use std::collections::BTreeMap;

use crate::{DynGraph, EdgeKey, GraphError, NodeId, TopologyChange};

/// Incrementally maintained line graph `L(G)` of a dynamic base graph `G`.
///
/// Section 5 of the paper obtains a history-independent *maximal matching*
/// algorithm by simulating the MIS algorithm on the line graph: every edge of
/// `G` is a node of `L(G)`, and two such nodes are adjacent iff the edges
/// share an endpoint. An MIS of `L(G)` is exactly a maximal matching of `G`.
///
/// A single topology change in `G` translates into a *sequence* of single
/// topology changes in `L(G)` (the paper notes the translation is "only
/// technical"): an edge insertion in `G` is one node insertion in `L(G)`; a
/// node deletion in `G` with degree `d` is `d` node deletions in `L(G)`.
/// The `apply_*` methods perform the bookkeeping and return the
/// induced changes so a dynamic MIS structure can consume them one by one.
///
/// # Example
///
/// ```
/// use dmis_graph::{DynGraph, LineGraphMirror};
///
/// let (mut g, ids) = DynGraph::with_nodes(3);
/// let mut mirror = LineGraphMirror::new(&g);
/// mirror.apply_edge_insert(&mut g, ids[0], ids[1])?;
/// mirror.apply_edge_insert(&mut g, ids[1], ids[2])?;
/// // Two edges sharing ids[1]: their line nodes are adjacent.
/// assert_eq!(mirror.line_graph().node_count(), 2);
/// assert_eq!(mirror.line_graph().edge_count(), 1);
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LineGraphMirror {
    line: DynGraph,
    edge_to_node: BTreeMap<EdgeKey, NodeId>,
    node_to_edge: BTreeMap<NodeId, EdgeKey>,
}

impl LineGraphMirror {
    /// Builds the line graph of the current state of `g`.
    #[must_use]
    pub fn new(g: &DynGraph) -> Self {
        let mut mirror = LineGraphMirror {
            line: DynGraph::new(),
            edge_to_node: BTreeMap::new(),
            node_to_edge: BTreeMap::new(),
        };
        for key in g.edges() {
            mirror.insert_line_node(g, key);
        }
        mirror
    }

    /// Returns the maintained line graph.
    #[must_use]
    pub fn line_graph(&self) -> &DynGraph {
        &self.line
    }

    /// Returns the line-graph node representing the base edge `{u, v}`, if
    /// that edge exists.
    #[must_use]
    pub fn node_of_edge(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.edge_to_node.get(&EdgeKey::new(u, v)).copied()
    }

    /// Returns the base edge represented by line-graph node `ln`, if any.
    #[must_use]
    pub fn edge_of_node(&self, ln: NodeId) -> Option<EdgeKey> {
        self.node_to_edge.get(&ln).copied()
    }

    fn insert_line_node(&mut self, g: &DynGraph, key: EdgeKey) -> (NodeId, Vec<NodeId>) {
        let (u, v) = key.endpoints();
        let mut adjacent = Vec::new();
        for endpoint in [u, v] {
            for w in g.neighbors(endpoint).expect("endpoints exist") {
                if EdgeKey::new(endpoint, w) == key {
                    continue;
                }
                if let Some(&ln) = self.edge_to_node.get(&EdgeKey::new(endpoint, w)) {
                    if !adjacent.contains(&ln) {
                        adjacent.push(ln);
                    }
                }
            }
        }
        let ln = self
            .line
            .add_node_with_edges(adjacent.iter().copied())
            .expect("line neighbors exist");
        self.edge_to_node.insert(key, ln);
        self.node_to_edge.insert(ln, key);
        (ln, adjacent)
    }

    /// Inserts the edge `{u, v}` into the base graph `g` and mirrors it as a
    /// node insertion in `L(G)`. Returns the induced line-graph change.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the base-graph insertion, leaving both
    /// graphs unchanged.
    pub fn apply_edge_insert(
        &mut self,
        g: &mut DynGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<TopologyChange, GraphError> {
        g.insert_edge(u, v)?;
        let (ln, adjacent) = self.insert_line_node(g, EdgeKey::new(u, v));
        Ok(TopologyChange::InsertNode {
            id: ln,
            edges: adjacent,
        })
    }

    /// Removes the edge `{u, v}` from the base graph and mirrors it as a node
    /// deletion in `L(G)`. Returns the induced line-graph change.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the base-graph removal.
    pub fn apply_edge_remove(
        &mut self,
        g: &mut DynGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<TopologyChange, GraphError> {
        g.remove_edge(u, v)?;
        let key = EdgeKey::new(u, v);
        let ln = self
            .edge_to_node
            .remove(&key)
            .expect("mirror tracked the edge");
        self.node_to_edge.remove(&ln);
        self.line.remove_node(ln).expect("mirror tracked the node");
        Ok(TopologyChange::DeleteNode(ln))
    }

    /// Removes node `v` from the base graph and mirrors it as a sequence of
    /// node deletions in `L(G)` (one per incident edge). Returns the induced
    /// line-graph changes in the order they were applied.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if `v` does not exist.
    pub fn apply_node_remove(
        &mut self,
        g: &mut DynGraph,
        v: NodeId,
    ) -> Result<Vec<TopologyChange>, GraphError> {
        let nbrs = g.neighbors_vec(v)?;
        let mut changes = Vec::with_capacity(nbrs.len());
        for u in nbrs {
            changes.push(self.apply_edge_remove(g, v, u)?);
        }
        g.remove_node(v)?;
        Ok(changes)
    }

    /// Adds a new node to the base graph with edges to `neighbors`, mirroring
    /// each edge as a node insertion in `L(G)`. Returns the new base node and
    /// the induced line-graph changes.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the base-graph insertion.
    pub fn apply_node_insert<I>(
        &mut self,
        g: &mut DynGraph,
        neighbors: I,
    ) -> Result<(NodeId, Vec<TopologyChange>), GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let v = g.add_node();
        let mut changes = Vec::new();
        for u in neighbors {
            match self.apply_edge_insert(g, v, u) {
                Ok(c) => changes.push(c),
                Err(e) => return Err(e),
            }
        }
        Ok((v, changes))
    }

    /// Rebuilds the line graph from scratch and asserts it matches the
    /// incrementally maintained one (up to identifier renaming it must be
    /// isomorphic; we check structural statistics and adjacency through the
    /// edge mapping). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if the mirror diverged from the ground truth.
    pub fn assert_matches(&self, g: &DynGraph) {
        assert_eq!(self.line.node_count(), g.edge_count(), "node count");
        for key in g.edges() {
            assert!(self.edge_to_node.contains_key(&key), "missing edge {key:?}");
        }
        // Adjacency: two base edges sharing an endpoint must be adjacent.
        let edges: Vec<EdgeKey> = g.edges().collect();
        for (i, &a) in edges.iter().enumerate() {
            for &b in &edges[i + 1..] {
                let (a1, a2) = a.endpoints();
                let shares = b.contains(a1) || b.contains(a2);
                let la = self.edge_to_node[&a];
                let lb = self.edge_to_node[&b];
                assert_eq!(
                    self.line.has_edge(la, lb),
                    shares,
                    "adjacency mismatch for {a:?} vs {b:?}"
                );
            }
        }
        self.line.assert_consistent();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn triangle_line_graph_is_triangle() {
        let (g, _) = generators::cycle(3);
        let mirror = LineGraphMirror::new(&g);
        assert_eq!(mirror.line_graph().node_count(), 3);
        assert_eq!(mirror.line_graph().edge_count(), 3);
        mirror.assert_matches(&g);
    }

    #[test]
    fn star_line_graph_is_complete() {
        let (g, _) = generators::star(5);
        let mirror = LineGraphMirror::new(&g);
        // Line graph of K_{1,4} is K_4.
        assert_eq!(mirror.line_graph().node_count(), 4);
        assert_eq!(mirror.line_graph().edge_count(), 6);
        mirror.assert_matches(&g);
    }

    #[test]
    fn incremental_edge_ops_match_rebuild() {
        let (mut g, ids) = DynGraph::with_nodes(4);
        let mut mirror = LineGraphMirror::new(&g);
        mirror.apply_edge_insert(&mut g, ids[0], ids[1]).unwrap();
        mirror.apply_edge_insert(&mut g, ids[1], ids[2]).unwrap();
        mirror.apply_edge_insert(&mut g, ids[2], ids[3]).unwrap();
        mirror.apply_edge_insert(&mut g, ids[3], ids[0]).unwrap();
        mirror.assert_matches(&g);
        mirror.apply_edge_remove(&mut g, ids[1], ids[2]).unwrap();
        mirror.assert_matches(&g);
    }

    #[test]
    fn node_removal_mirrors_as_sequence() {
        let (mut g, ids) = generators::star(4);
        let mut mirror = LineGraphMirror::new(&g);
        let changes = mirror.apply_node_remove(&mut g, ids[0]).unwrap();
        assert_eq!(changes.len(), 3, "one line deletion per incident edge");
        assert_eq!(mirror.line_graph().node_count(), 0);
        mirror.assert_matches(&g);
    }

    #[test]
    fn node_insert_mirrors_as_sequence() {
        let (mut g, ids) = generators::path(3);
        let mut mirror = LineGraphMirror::new(&g);
        let (v, changes) = mirror
            .apply_node_insert(&mut g, vec![ids[0], ids[2]])
            .unwrap();
        assert!(g.has_node(v));
        assert_eq!(changes.len(), 2);
        mirror.assert_matches(&g);
    }

    #[test]
    fn mapping_round_trips() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        let mut mirror = LineGraphMirror::new(&g);
        mirror.apply_edge_insert(&mut g, ids[0], ids[1]).unwrap();
        let ln = mirror.node_of_edge(ids[0], ids[1]).unwrap();
        assert_eq!(mirror.edge_of_node(ln), Some(EdgeKey::new(ids[0], ids[1])));
        assert!(mirror.node_of_edge(ids[1], ids[0]).is_some(), "orderless");
    }

    #[test]
    fn random_churn_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(20);
        let (mut g, ids) = generators::erdos_renyi(10, 0.3, &mut rng);
        let mut mirror = LineGraphMirror::new(&g);
        mirror.assert_matches(&g);
        for _ in 0..200 {
            if rng.random_bool(0.5) {
                if let Some((u, v)) = generators::random_non_edge(&g, &mut rng) {
                    mirror.apply_edge_insert(&mut g, u, v).unwrap();
                }
            } else if let Some((u, v)) = generators::random_edge(&g, &mut rng) {
                mirror.apply_edge_remove(&mut g, u, v).unwrap();
            }
        }
        let _ = ids;
        mirror.assert_matches(&g);
    }
}
