//! Update-stream generators: sequences of topology changes driving
//! long-lived dynamic executions.
//!
//! The paper's model assumes an *oblivious non-adaptive adversary*: the
//! change sequence may be arbitrary but must not depend on the algorithm's
//! randomness. Streams generated here depend only on the evolving graph
//! topology (never on any algorithm output), so they are valid oblivious
//! adversaries.

use rand::Rng;

use crate::{generators, DistributedChange, DynGraph, EdgeKey, NodeId, TopologyChange};

/// Configuration for the random churn generator.
///
/// The weights need not sum to 1; they are normalized. A weight of 0 disables
/// the change type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Weight of edge insertions.
    pub edge_insert: f64,
    /// Weight of edge deletions.
    pub edge_delete: f64,
    /// Weight of node insertions.
    pub node_insert: f64,
    /// Weight of node deletions.
    pub node_delete: f64,
    /// Maximum degree of a freshly inserted node.
    pub max_new_degree: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            edge_insert: 0.4,
            edge_delete: 0.4,
            node_insert: 0.1,
            node_delete: 0.1,
            max_new_degree: 4,
        }
    }
}

impl ChurnConfig {
    /// A configuration performing only edge changes (insert/delete with equal
    /// weight).
    #[must_use]
    pub fn edges_only() -> Self {
        ChurnConfig {
            edge_insert: 0.5,
            edge_delete: 0.5,
            node_insert: 0.0,
            node_delete: 0.0,
            max_new_degree: 0,
        }
    }

    /// A configuration performing only node changes.
    #[must_use]
    pub fn nodes_only(max_new_degree: usize) -> Self {
        ChurnConfig {
            edge_insert: 0.0,
            edge_delete: 0.0,
            node_insert: 0.5,
            node_delete: 0.5,
            max_new_degree,
        }
    }
}

/// Draws the next random topology change valid for the current state of `g`,
/// or `None` if no configured change is applicable (e.g. the graph is empty
/// and only deletions are enabled).
///
/// The returned change is *not* applied; callers typically feed it to both a
/// graph and an algorithm under test.
#[must_use]
pub fn random_change<R: Rng + ?Sized>(
    g: &DynGraph,
    cfg: &ChurnConfig,
    rng: &mut R,
) -> Option<TopologyChange> {
    let mut options: Vec<(f64, u8)> = Vec::with_capacity(4);
    if cfg.edge_insert > 0.0 && generators::random_non_edge(g, &mut *rng).is_some() {
        options.push((cfg.edge_insert, 0));
    }
    if cfg.edge_delete > 0.0 && g.edge_count() > 0 {
        options.push((cfg.edge_delete, 1));
    }
    if cfg.node_insert > 0.0 {
        options.push((cfg.node_insert, 2));
    }
    if cfg.node_delete > 0.0 && g.node_count() > 0 {
        options.push((cfg.node_delete, 3));
    }
    let total: f64 = options.iter().map(|(w, _)| w).sum();
    if options.is_empty() || total <= 0.0 {
        return None;
    }
    let mut pick = rng.random_range(0.0..total);
    let mut chosen = options[options.len() - 1].1;
    for (w, tag) in options {
        if pick < w {
            chosen = tag;
            break;
        }
        pick -= w;
    }
    match chosen {
        0 => {
            let (u, v) = generators::random_non_edge(g, rng)?;
            Some(TopologyChange::InsertEdge(u, v))
        }
        1 => {
            let (u, v) = generators::random_edge(g, rng)?;
            Some(TopologyChange::DeleteEdge(u, v))
        }
        2 => {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let deg = rng.random_range(0..=cfg.max_new_degree.min(nodes.len()));
            let mut edges = Vec::with_capacity(deg);
            let mut pool = nodes;
            for _ in 0..deg {
                let i = rng.random_range(0..pool.len());
                edges.push(pool.swap_remove(i));
            }
            Some(TopologyChange::InsertNode {
                id: NodeId(next_id_of(g)),
                edges,
            })
        }
        _ => {
            let v = generators::random_node(g, rng)?;
            Some(TopologyChange::DeleteNode(v))
        }
    }
}

/// Generates a sequence of `len` random changes starting from `g`, applying
/// each to the evolving copy; returns the change list.
///
/// The final graph can be recovered by re-applying the changes to a clone of
/// the initial graph.
#[must_use]
pub fn random_stream<R: Rng + ?Sized>(
    g: &DynGraph,
    cfg: &ChurnConfig,
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    let mut evolving = g.clone();
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let Some(change) = random_change(&evolving, cfg, rng) else {
            break;
        };
        change
            .apply(&mut evolving)
            .expect("generated changes are valid for the evolving graph");
        out.push(change);
    }
    out
}

/// Lifts a template-level change into a [`DistributedChange`], choosing the
/// graceful/abrupt or insert/unmute variant at random where applicable.
#[must_use]
pub fn randomize_distributed<R: Rng + ?Sized>(
    change: &TopologyChange,
    rng: &mut R,
) -> DistributedChange {
    match change {
        TopologyChange::InsertEdge(u, v) => DistributedChange::InsertEdge(*u, *v),
        TopologyChange::DeleteEdge(u, v) => {
            if rng.random_bool(0.5) {
                DistributedChange::GracefulDeleteEdge(*u, *v)
            } else {
                DistributedChange::AbruptDeleteEdge(*u, *v)
            }
        }
        TopologyChange::InsertNode { id, edges } => {
            if rng.random_bool(0.5) {
                DistributedChange::InsertNode {
                    id: *id,
                    edges: edges.clone(),
                }
            } else {
                DistributedChange::UnmuteNode {
                    id: *id,
                    edges: edges.clone(),
                }
            }
        }
        TopologyChange::DeleteNode(v) => {
            if rng.random_bool(0.5) {
                DistributedChange::GracefulDeleteNode(*v)
            } else {
                DistributedChange::AbruptDeleteNode(*v)
            }
        }
    }
}

/// The deterministic lower-bound cascade of Section 1.1: starting from
/// `K_{k,k}`, delete the nodes of the left side one at a time.
///
/// Returns the initial graph, its two sides, and the deletion sequence. Any
/// deterministic dynamic MIS algorithm must, at some step of this sequence,
/// change the output of *every* remaining node.
#[must_use]
pub fn bipartite_cascade(k: usize) -> (DynGraph, Vec<NodeId>, Vec<NodeId>, Vec<TopologyChange>) {
    let (g, left, right) = generators::complete_bipartite(k, k);
    let stream = left
        .iter()
        .map(|&v| TopologyChange::DeleteNode(v))
        .collect();
    (g, left, right, stream)
}

/// Builds a star on `n` nodes by inserting the center first and then each
/// leaf with a single edge — the adversarial construction order of Section 5,
/// Example 1 (a "natural" history-dependent greedy keeps the center in the
/// MIS forever, producing the worst-case MIS of size 1).
///
/// Returns the insertion stream starting from the empty graph; `NodeId(0)`
/// is the center.
#[must_use]
pub fn adversarial_star_stream(n: usize) -> Vec<TopologyChange> {
    assert!(n > 0, "a star needs at least a center");
    let mut stream = Vec::with_capacity(n);
    stream.push(TopologyChange::InsertNode {
        id: NodeId(0),
        edges: vec![],
    });
    for i in 1..n as u64 {
        stream.push(TopologyChange::InsertNode {
            id: NodeId(i),
            edges: vec![NodeId(0)],
        });
    }
    stream
}

/// Samples a pool of `size` distinct-endpoint node pairs of `g` —
/// candidate edges for [`flapping_stream`]. Pairs may or may not be
/// edges of `g`, and may repeat.
///
/// # Panics
///
/// Panics if `g` has fewer than two nodes.
pub fn random_pair_pool<R: Rng + ?Sized>(
    g: &DynGraph,
    size: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    assert!(nodes.len() >= 2, "pair pool needs at least two nodes");
    (0..size)
        .map(|_| {
            let a = nodes[rng.random_range(0..nodes.len() as u64) as usize];
            let mut b = a;
            while b == a {
                b = nodes[rng.random_range(0..nodes.len() as u64) as usize];
            }
            (a, b)
        })
        .collect()
}

/// A **flapping stream**: `len` random toggles over the bounded `pool`
/// of candidate edges — delete the pool edge if present in the evolving
/// topology, insert it otherwise. Because the pool is bounded, nearby
/// changes regularly revisit the same edge, which is the workload shape
/// where a coalescing ingestion queue cancels real work (and a valid
/// oblivious adversary: it depends only on the evolving topology).
///
/// With `closed`, a tail of at most `pool.len()` restoring toggles
/// returns every pool edge to its initial presence, so the stream can be
/// replayed against the same starting graph indefinitely (bench
/// iterations, snapshot samples).
pub fn flapping_stream<R: Rng + ?Sized>(
    g: &DynGraph,
    pool: &[(NodeId, NodeId)],
    len: usize,
    closed: bool,
    rng: &mut R,
) -> Vec<TopologyChange> {
    let initial: std::collections::BTreeSet<EdgeKey> = g.edges().collect();
    let mut present = initial.clone();
    let mut stream: Vec<TopologyChange> = (0..len)
        .map(|_| {
            let (u, v) = pool[rng.random_range(0..pool.len() as u64) as usize];
            let key = EdgeKey::new(u, v);
            if present.remove(&key) {
                TopologyChange::DeleteEdge(u, v)
            } else {
                present.insert(key);
                TopologyChange::InsertEdge(u, v)
            }
        })
        .collect();
    if closed {
        for &(u, v) in pool {
            let key = EdgeKey::new(u, v);
            match (initial.contains(&key), present.contains(&key)) {
                (true, false) => stream.push(TopologyChange::InsertEdge(u, v)),
                (false, true) => stream.push(TopologyChange::DeleteEdge(u, v)),
                _ => {}
            }
        }
    }
    stream
}

/// Returns the identifier the next inserted node will get.
#[must_use]
pub fn next_id_of(g: &DynGraph) -> u64 {
    g.peek_next_id().index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_stream_is_applicable() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(12, 0.2, &mut rng);
        let stream = random_stream(&g, &ChurnConfig::default(), 300, &mut rng);
        assert_eq!(stream.len(), 300);
        let mut replay = g.clone();
        for c in &stream {
            c.apply(&mut replay).unwrap();
        }
        replay.assert_consistent();
    }

    #[test]
    fn edges_only_stream_preserves_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = generators::erdos_renyi(8, 0.5, &mut rng);
        let stream = random_stream(&g, &ChurnConfig::edges_only(), 100, &mut rng);
        for c in &stream {
            assert!(matches!(
                c,
                TopologyChange::InsertEdge(..) | TopologyChange::DeleteEdge(..)
            ));
        }
    }

    #[test]
    fn nodes_only_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = generators::path(5);
        let stream = random_stream(&g, &ChurnConfig::nodes_only(3), 60, &mut rng);
        for c in &stream {
            assert!(matches!(
                c,
                TopologyChange::InsertNode { .. } | TopologyChange::DeleteNode(..)
            ));
        }
    }

    #[test]
    fn empty_graph_with_delete_only_config_yields_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = DynGraph::new();
        let cfg = ChurnConfig {
            edge_insert: 0.0,
            edge_delete: 1.0,
            node_insert: 0.0,
            node_delete: 0.0,
            max_new_degree: 0,
        };
        assert!(random_change(&g, &cfg, &mut rng).is_none());
    }

    #[test]
    fn bipartite_cascade_shape() {
        let (g, left, right, stream) = bipartite_cascade(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(stream.len(), 4);
        assert_eq!(left.len(), 4);
        assert_eq!(right.len(), 4);
        let mut replay = g.clone();
        for c in &stream {
            c.apply(&mut replay).unwrap();
        }
        assert_eq!(replay.node_count(), 4);
        assert_eq!(replay.edge_count(), 0);
    }

    #[test]
    fn adversarial_star_builds_star() {
        let stream = adversarial_star_stream(6);
        let mut g = DynGraph::new();
        for c in &stream {
            c.apply(&mut g).unwrap();
        }
        assert_eq!(g.degree(NodeId(0)), Some(5));
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn randomize_distributed_projects_back() {
        let mut rng = StdRng::seed_from_u64(5);
        let changes = [
            TopologyChange::InsertEdge(NodeId(0), NodeId(1)),
            TopologyChange::DeleteEdge(NodeId(0), NodeId(1)),
            TopologyChange::InsertNode {
                id: NodeId(2),
                edges: vec![NodeId(0)],
            },
            TopologyChange::DeleteNode(NodeId(2)),
        ];
        for c in &changes {
            for _ in 0..8 {
                let d = randomize_distributed(c, &mut rng);
                assert_eq!(&d.to_topology(), c);
            }
        }
    }
}
