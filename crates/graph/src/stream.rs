//! Update-stream generators: sequences of topology changes driving
//! long-lived dynamic executions.
//!
//! The paper's model assumes an *oblivious non-adaptive adversary*: the
//! change sequence may be arbitrary but must not depend on the algorithm's
//! randomness. Streams generated here depend only on the evolving graph
//! topology (never on any algorithm output), so they are valid oblivious
//! adversaries.

use rand::Rng;

use crate::{generators, DistributedChange, DynGraph, EdgeKey, NodeId, TopologyChange};

/// Configuration for the random churn generator.
///
/// The weights need not sum to 1; they are normalized. A weight of 0 disables
/// the change type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Weight of edge insertions.
    pub edge_insert: f64,
    /// Weight of edge deletions.
    pub edge_delete: f64,
    /// Weight of node insertions.
    pub node_insert: f64,
    /// Weight of node deletions.
    pub node_delete: f64,
    /// Maximum degree of a freshly inserted node.
    pub max_new_degree: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            edge_insert: 0.4,
            edge_delete: 0.4,
            node_insert: 0.1,
            node_delete: 0.1,
            max_new_degree: 4,
        }
    }
}

impl ChurnConfig {
    /// A configuration performing only edge changes (insert/delete with equal
    /// weight).
    #[must_use]
    pub fn edges_only() -> Self {
        ChurnConfig {
            edge_insert: 0.5,
            edge_delete: 0.5,
            node_insert: 0.0,
            node_delete: 0.0,
            max_new_degree: 0,
        }
    }

    /// A configuration performing only node changes.
    #[must_use]
    pub fn nodes_only(max_new_degree: usize) -> Self {
        ChurnConfig {
            edge_insert: 0.0,
            edge_delete: 0.0,
            node_insert: 0.5,
            node_delete: 0.5,
            max_new_degree,
        }
    }
}

/// Draws the next random topology change valid for the current state of `g`,
/// or `None` if no configured change is applicable (e.g. the graph is empty
/// and only deletions are enabled).
///
/// The returned change is *not* applied; callers typically feed it to both a
/// graph and an algorithm under test.
#[must_use]
pub fn random_change<R: Rng + ?Sized>(
    g: &DynGraph,
    cfg: &ChurnConfig,
    rng: &mut R,
) -> Option<TopologyChange> {
    let mut options: Vec<(f64, u8)> = Vec::with_capacity(4);
    if cfg.edge_insert > 0.0 && generators::random_non_edge(g, &mut *rng).is_some() {
        options.push((cfg.edge_insert, 0));
    }
    if cfg.edge_delete > 0.0 && g.edge_count() > 0 {
        options.push((cfg.edge_delete, 1));
    }
    if cfg.node_insert > 0.0 {
        options.push((cfg.node_insert, 2));
    }
    if cfg.node_delete > 0.0 && g.node_count() > 0 {
        options.push((cfg.node_delete, 3));
    }
    let total: f64 = options.iter().map(|(w, _)| w).sum();
    if options.is_empty() || total <= 0.0 {
        return None;
    }
    let mut pick = rng.random_range(0.0..total);
    let mut chosen = options[options.len() - 1].1;
    for (w, tag) in options {
        if pick < w {
            chosen = tag;
            break;
        }
        pick -= w;
    }
    match chosen {
        0 => {
            let (u, v) = generators::random_non_edge(g, rng)?;
            Some(TopologyChange::InsertEdge(u, v))
        }
        1 => {
            let (u, v) = generators::random_edge(g, rng)?;
            Some(TopologyChange::DeleteEdge(u, v))
        }
        2 => {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let deg = rng.random_range(0..=cfg.max_new_degree.min(nodes.len()));
            let mut edges = Vec::with_capacity(deg);
            let mut pool = nodes;
            for _ in 0..deg {
                let i = rng.random_range(0..pool.len());
                edges.push(pool.swap_remove(i));
            }
            Some(TopologyChange::InsertNode {
                id: NodeId(next_id_of(g)),
                edges,
            })
        }
        _ => {
            let v = generators::random_node(g, rng)?;
            Some(TopologyChange::DeleteNode(v))
        }
    }
}

/// Generates a sequence of `len` random changes starting from `g`, applying
/// each to the evolving copy; returns the change list.
///
/// The final graph can be recovered by re-applying the changes to a clone of
/// the initial graph.
#[must_use]
pub fn random_stream<R: Rng + ?Sized>(
    g: &DynGraph,
    cfg: &ChurnConfig,
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    let mut evolving = g.clone();
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let Some(change) = random_change(&evolving, cfg, rng) else {
            break;
        };
        change
            .apply(&mut evolving)
            .expect("generated changes are valid for the evolving graph");
        out.push(change);
    }
    out
}

/// Lifts a template-level change into a [`DistributedChange`], choosing the
/// graceful/abrupt or insert/unmute variant at random where applicable.
#[must_use]
pub fn randomize_distributed<R: Rng + ?Sized>(
    change: &TopologyChange,
    rng: &mut R,
) -> DistributedChange {
    match change {
        TopologyChange::InsertEdge(u, v) => DistributedChange::InsertEdge(*u, *v),
        TopologyChange::DeleteEdge(u, v) => {
            if rng.random_bool(0.5) {
                DistributedChange::GracefulDeleteEdge(*u, *v)
            } else {
                DistributedChange::AbruptDeleteEdge(*u, *v)
            }
        }
        TopologyChange::InsertNode { id, edges } => {
            if rng.random_bool(0.5) {
                DistributedChange::InsertNode {
                    id: *id,
                    edges: edges.clone(),
                }
            } else {
                DistributedChange::UnmuteNode {
                    id: *id,
                    edges: edges.clone(),
                }
            }
        }
        TopologyChange::DeleteNode(v) => {
            if rng.random_bool(0.5) {
                DistributedChange::GracefulDeleteNode(*v)
            } else {
                DistributedChange::AbruptDeleteNode(*v)
            }
        }
    }
}

/// The deterministic lower-bound cascade of Section 1.1: starting from
/// `K_{k,k}`, delete the nodes of the left side one at a time.
///
/// Returns the initial graph, its two sides, and the deletion sequence. Any
/// deterministic dynamic MIS algorithm must, at some step of this sequence,
/// change the output of *every* remaining node.
#[must_use]
pub fn bipartite_cascade(k: usize) -> (DynGraph, Vec<NodeId>, Vec<NodeId>, Vec<TopologyChange>) {
    let (g, left, right) = generators::complete_bipartite(k, k);
    let stream = left
        .iter()
        .map(|&v| TopologyChange::DeleteNode(v))
        .collect();
    (g, left, right, stream)
}

/// Builds a star on `n` nodes by inserting the center first and then each
/// leaf with a single edge — the adversarial construction order of Section 5,
/// Example 1 (a "natural" history-dependent greedy keeps the center in the
/// MIS forever, producing the worst-case MIS of size 1).
///
/// Returns the insertion stream starting from the empty graph; `NodeId(0)`
/// is the center.
#[must_use]
pub fn adversarial_star_stream(n: usize) -> Vec<TopologyChange> {
    assert!(n > 0, "a star needs at least a center");
    let mut stream = Vec::with_capacity(n);
    stream.push(TopologyChange::InsertNode {
        id: NodeId(0),
        edges: vec![],
    });
    for i in 1..n as u64 {
        stream.push(TopologyChange::InsertNode {
            id: NodeId(i),
            edges: vec![NodeId(0)],
        });
    }
    stream
}

/// Samples a pool of `size` distinct-endpoint node pairs of `g` —
/// candidate edges for [`flapping_stream`]. Pairs may or may not be
/// edges of `g`, and may repeat.
///
/// # Panics
///
/// Panics if `g` has fewer than two nodes.
pub fn random_pair_pool<R: Rng + ?Sized>(
    g: &DynGraph,
    size: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    assert!(nodes.len() >= 2, "pair pool needs at least two nodes");
    (0..size)
        .map(|_| {
            let a = nodes[rng.random_range(0..nodes.len() as u64) as usize];
            let mut b = a;
            while b == a {
                b = nodes[rng.random_range(0..nodes.len() as u64) as usize];
            }
            (a, b)
        })
        .collect()
}

/// A **flapping stream**: `len` random toggles over the bounded `pool`
/// of candidate edges — delete the pool edge if present in the evolving
/// topology, insert it otherwise. Because the pool is bounded, nearby
/// changes regularly revisit the same edge, which is the workload shape
/// where a coalescing ingestion queue cancels real work (and a valid
/// oblivious adversary: it depends only on the evolving topology).
///
/// With `closed`, a tail of at most `pool.len()` restoring toggles
/// returns every pool edge to its initial presence, so the stream can be
/// replayed against the same starting graph indefinitely (bench
/// iterations, snapshot samples).
pub fn flapping_stream<R: Rng + ?Sized>(
    g: &DynGraph,
    pool: &[(NodeId, NodeId)],
    len: usize,
    closed: bool,
    rng: &mut R,
) -> Vec<TopologyChange> {
    let initial: std::collections::BTreeSet<EdgeKey> = g.edges().collect();
    let mut present = initial.clone();
    let mut stream: Vec<TopologyChange> = (0..len)
        .map(|_| {
            let (u, v) = pool[rng.random_range(0..pool.len() as u64) as usize];
            let key = EdgeKey::new(u, v);
            if present.remove(&key) {
                TopologyChange::DeleteEdge(u, v)
            } else {
                present.insert(key);
                TopologyChange::InsertEdge(u, v)
            }
        })
        .collect();
    if closed {
        for &(u, v) in pool {
            let key = EdgeKey::new(u, v);
            match (initial.contains(&key), present.contains(&key)) {
                (true, false) => stream.push(TopologyChange::InsertEdge(u, v)),
                (false, true) => stream.push(TopologyChange::DeleteEdge(u, v)),
                _ => {}
            }
        }
    }
    stream
}

/// Draws an index in `0..n` from the Chung–Lu power-law weight
/// distribution `w_i ∝ (i + 1)^{-1/(β-1)}` by inverse-CDF sampling —
/// index 0 (the heaviest hub) is the most likely.
fn power_law_index<R: Rng + ?Sized>(n: usize, beta: f64, rng: &mut R) -> usize {
    let gamma = 1.0 / (beta - 1.0);
    let u: f64 = rng.random();
    ((n as f64 * u.powf(1.0 / (1.0 - gamma))) as usize).min(n - 1)
}

/// **Power-law churn**: `len` edge toggles whose endpoints are drawn from
/// the Chung–Lu index distribution of exponent `beta` over `ids` — toggle
/// partners concentrate on the front-of-order hubs exactly like the edges
/// of [`generators::chung_lu`] (which returns `ids` in hub-first order).
/// A pair present in the evolving topology is deleted, an absent one
/// inserted, so every change is valid when applied in order.
///
/// Endpoint choice depends only on `ids` and the rng, presence only on
/// the evolving topology: a valid oblivious adversary. Each step is
/// `O(log m)`, independent of `n`.
///
/// # Panics
///
/// Panics if `ids` has fewer than two nodes or `beta ≤ 2`.
pub fn power_law_churn<R: Rng + ?Sized>(
    g: &DynGraph,
    ids: &[NodeId],
    beta: f64,
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    assert!(ids.len() >= 2, "power-law churn needs at least two nodes");
    assert!(beta > 2.0, "need beta > 2 for a finite mean degree");
    let mut present: std::collections::BTreeSet<EdgeKey> = g.edges().collect();
    (0..len)
        .map(|_| {
            let u = ids[power_law_index(ids.len(), beta, rng)];
            let mut v = u;
            while v == u {
                v = ids[power_law_index(ids.len(), beta, rng)];
            }
            let key = EdgeKey::new(u, v);
            if present.remove(&key) {
                TopologyChange::DeleteEdge(u, v)
            } else {
                present.insert(key);
                TopologyChange::InsertEdge(u, v)
            }
        })
        .collect()
}

/// **Community-structured churn**: `ids` is split into `communities`
/// contiguous blocks, and each of the `len` edge toggles picks a random
/// home block, then toggles an intra-block pair — or, with probability
/// `inter`, a pair bridging to a different block. The result is the
/// locality-heavy workload a sharded engine sees when its shard map
/// roughly matches the community structure: most cascades stay inside one
/// block, with an `inter`-controlled trickle of cross-shard traffic.
///
/// A pair present in the evolving topology is deleted, an absent one
/// inserted. Valid oblivious adversary; `O(log m)` per step.
///
/// # Panics
///
/// Panics if `communities == 0`, if any block would have fewer than two
/// nodes (`ids.len() / communities < 2`), or if `inter` is not a
/// probability.
pub fn community_churn<R: Rng + ?Sized>(
    g: &DynGraph,
    ids: &[NodeId],
    communities: usize,
    inter: f64,
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    assert!(communities > 0, "need at least one community");
    let block = ids.len() / communities;
    assert!(block >= 2, "every community needs at least two nodes");
    assert!((0.0..=1.0).contains(&inter), "inter must be a probability");
    // Block `c` spans `ids[c*block..(c+1)*block]`; the division remainder
    // joins the last block.
    let span = |c: usize| {
        let end = if c + 1 == communities {
            ids.len()
        } else {
            (c + 1) * block
        };
        &ids[c * block..end]
    };
    let mut present: std::collections::BTreeSet<EdgeKey> = g.edges().collect();
    (0..len)
        .map(|_| {
            let h = rng.random_range(0..communities);
            let home = span(h);
            let u = home[rng.random_range(0..home.len())];
            let away = if communities > 1 && rng.random_bool(inter) {
                // Uniform over the other blocks: draw from all-but-one and
                // remap a collision with `h` to the excluded last block.
                let mut c = rng.random_range(0..communities - 1);
                if c == h {
                    c = communities - 1;
                }
                span(c)
            } else {
                home
            };
            let mut v = u;
            while v == u {
                v = away[rng.random_range(0..away.len())];
            }
            let key = EdgeKey::new(u, v);
            if present.remove(&key) {
                TopologyChange::DeleteEdge(u, v)
            } else {
                present.insert(key);
                TopologyChange::InsertEdge(u, v)
            }
        })
        .collect()
}

/// **Temporal sliding-window stream**: fresh uniform edges are inserted
/// one per tick, and every inserted edge expires — is deleted again —
/// once `window` younger insertions have happened, so the evolving
/// topology holds a moving window over the most recent arrivals (the
/// standard temporal-graph-stream shape).
///
/// Only window edges expire: edges of the starting graph `g` are never
/// deleted, and every `DeleteEdge` in the stream refers to an edge a
/// strictly earlier `InsertEdge` created, so the stream is valid when
/// applied in order. When the pair space around `ids` saturates (no fresh
/// pair found), the oldest window edge is expired early to make room; the
/// stream ends short only if there is nothing left to expire either.
///
/// Valid oblivious adversary: pair choice depends only on `ids`, the rng
/// and the evolving topology.
///
/// # Panics
///
/// Panics if `ids` has fewer than two nodes or `window == 0`.
pub fn sliding_window_stream<R: Rng + ?Sized>(
    g: &DynGraph,
    ids: &[NodeId],
    window: usize,
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    assert!(ids.len() >= 2, "a sliding window needs at least two nodes");
    assert!(window > 0, "the window must hold at least one edge");
    let mut present: std::collections::BTreeSet<EdgeKey> = g.edges().collect();
    let mut live: std::collections::VecDeque<(NodeId, NodeId)> =
        std::collections::VecDeque::with_capacity(window);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if live.len() == window {
            let (u, v) = live.pop_front().expect("window is non-empty");
            present.remove(&EdgeKey::new(u, v));
            out.push(TopologyChange::DeleteEdge(u, v));
            if out.len() == len {
                break;
            }
        }
        let mut fresh = None;
        for _ in 0..64 {
            let u = ids[rng.random_range(0..ids.len())];
            let mut v = u;
            while v == u {
                v = ids[rng.random_range(0..ids.len())];
            }
            if !present.contains(&EdgeKey::new(u, v)) {
                fresh = Some((u, v));
                break;
            }
        }
        match fresh {
            Some((u, v)) => {
                present.insert(EdgeKey::new(u, v));
                live.push_back((u, v));
                out.push(TopologyChange::InsertEdge(u, v));
            }
            None => {
                // Saturated: expire the oldest window edge early, or give
                // up if the window is already empty.
                let Some((u, v)) = live.pop_front() else {
                    break;
                };
                present.remove(&EdgeKey::new(u, v));
                out.push(TopologyChange::DeleteEdge(u, v));
            }
        }
    }
    out
}

/// **Fresh-pair stream**: `len` edge changes over `ids` where no edge key
/// is ever revisited — the adversarial *anti-coalescing* workload. A
/// coalescing ingestion queue lives off repeated keys (cancelling
/// opposing toggles, collapsing same-direction rewrites); here every
/// pushed change survives its window, so any watermark deeper than 1 buys
/// queue delay and nothing else. This is the stream an adaptive flush
/// policy must *shallow* on.
///
/// Each step inserts a uniformly drawn absent, never-touched pair; when
/// the rejection sampler stops finding one (pair space around `ids`
/// saturating), the step instead deletes a present, never-touched edge —
/// still a fresh key. The stream ends short only when neither move
/// exists. Valid oblivious adversary: choices depend only on `ids`, the
/// rng and the evolving topology.
///
/// # Panics
///
/// Panics if `ids` has fewer than two nodes.
pub fn fresh_pair_stream<R: Rng + ?Sized>(
    g: &DynGraph,
    ids: &[NodeId],
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    assert!(ids.len() >= 2, "fresh pairs need at least two nodes");
    let mut present: std::collections::BTreeSet<EdgeKey> = g.edges().collect();
    let mut touched: std::collections::BTreeSet<EdgeKey> = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let mut fresh = None;
        for _ in 0..64 {
            let u = ids[rng.random_range(0..ids.len())];
            let mut v = u;
            while v == u {
                v = ids[rng.random_range(0..ids.len())];
            }
            let key = EdgeKey::new(u, v);
            if !present.contains(&key) && !touched.contains(&key) {
                fresh = Some((u, v, key));
                break;
            }
        }
        match fresh {
            Some((u, v, key)) => {
                present.insert(key);
                touched.insert(key);
                out.push(TopologyChange::InsertEdge(u, v));
            }
            None => {
                // Saturated: spend a present, never-touched edge instead.
                let Some(&key) = present.iter().find(|k| !touched.contains(*k)) else {
                    break;
                };
                present.remove(&key);
                touched.insert(key);
                let (u, v) = key.endpoints();
                out.push(TopologyChange::DeleteEdge(u, v));
            }
        }
    }
    out
}

/// **Barrier churn**: edge toggles over the bounded `pool` (the
/// [`flapping_stream`] shape) interleaved with node changes at rate
/// `barrier_every` — every `barrier_every`-th change inserts a fresh node
/// (wired to up to `max_new_degree` random live nodes) or deletes a node
/// a strictly earlier step of this stream inserted. Node changes are
/// *barriers* to a coalescing ingestion queue: the window drains around
/// them, so coalescing can only happen between consecutive barriers. At
/// small `barrier_every` the stream starves deep windows exactly like
/// [`fresh_pair_stream`], while still exercising the node-change paths.
///
/// Only stream-inserted nodes are ever deleted — nodes of the starting
/// graph `g` (and the `pool` endpoints) survive, so the pool pairs stay
/// valid throughout. Changes are validated against a shadow copy of the
/// evolving topology. Valid oblivious adversary: choices depend only on
/// `g`, `pool`, the rng and the evolving topology.
///
/// # Panics
///
/// Panics if `pool` is empty or `barrier_every == 0`.
pub fn barrier_churn<R: Rng + ?Sized>(
    g: &DynGraph,
    pool: &[(NodeId, NodeId)],
    barrier_every: usize,
    max_new_degree: usize,
    len: usize,
    rng: &mut R,
) -> Vec<TopologyChange> {
    assert!(!pool.is_empty(), "barrier churn needs a pair pool");
    assert!(barrier_every > 0, "the barrier rate must be positive");
    let mut shadow = g.clone();
    let mut spawned: Vec<NodeId> = Vec::new();
    let mut out = Vec::with_capacity(len);
    for step in 0..len {
        let change = if (step + 1) % barrier_every == 0 {
            // Barrier step: node insert, or delete one of our own spawns.
            if !spawned.is_empty() && rng.random_bool(0.5) {
                let v = spawned.swap_remove(rng.random_range(0..spawned.len()));
                TopologyChange::DeleteNode(v)
            } else {
                let live: Vec<NodeId> = shadow.nodes().collect();
                let deg = rng.random_range(0..=max_new_degree.min(live.len()));
                let mut pick = live;
                let mut edges = Vec::with_capacity(deg);
                for _ in 0..deg {
                    let i = pick.swap_remove(rng.random_range(0..pick.len()));
                    edges.push(i);
                }
                let id = shadow.peek_next_id();
                spawned.push(id);
                TopologyChange::InsertNode { id, edges }
            }
        } else {
            let (u, v) = pool[rng.random_range(0..pool.len() as u64) as usize];
            if shadow.has_edge(u, v) {
                TopologyChange::DeleteEdge(u, v)
            } else {
                TopologyChange::InsertEdge(u, v)
            }
        };
        change
            .apply(&mut shadow)
            .expect("barrier churn only emits changes valid on the shadow topology");
        out.push(change);
    }
    out
}

/// Returns the identifier the next inserted node will get.
#[must_use]
pub fn next_id_of(g: &DynGraph) -> u64 {
    g.peek_next_id().index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_stream_is_applicable() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(12, 0.2, &mut rng);
        let stream = random_stream(&g, &ChurnConfig::default(), 300, &mut rng);
        assert_eq!(stream.len(), 300);
        let mut replay = g.clone();
        for c in &stream {
            c.apply(&mut replay).unwrap();
        }
        replay.assert_consistent();
    }

    #[test]
    fn edges_only_stream_preserves_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = generators::erdos_renyi(8, 0.5, &mut rng);
        let stream = random_stream(&g, &ChurnConfig::edges_only(), 100, &mut rng);
        for c in &stream {
            assert!(matches!(
                c,
                TopologyChange::InsertEdge(..) | TopologyChange::DeleteEdge(..)
            ));
        }
    }

    #[test]
    fn nodes_only_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = generators::path(5);
        let stream = random_stream(&g, &ChurnConfig::nodes_only(3), 60, &mut rng);
        for c in &stream {
            assert!(matches!(
                c,
                TopologyChange::InsertNode { .. } | TopologyChange::DeleteNode(..)
            ));
        }
    }

    #[test]
    fn empty_graph_with_delete_only_config_yields_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = DynGraph::new();
        let cfg = ChurnConfig {
            edge_insert: 0.0,
            edge_delete: 1.0,
            node_insert: 0.0,
            node_delete: 0.0,
            max_new_degree: 0,
        };
        assert!(random_change(&g, &cfg, &mut rng).is_none());
    }

    #[test]
    fn bipartite_cascade_shape() {
        let (g, left, right, stream) = bipartite_cascade(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(stream.len(), 4);
        assert_eq!(left.len(), 4);
        assert_eq!(right.len(), 4);
        let mut replay = g.clone();
        for c in &stream {
            c.apply(&mut replay).unwrap();
        }
        assert_eq!(replay.node_count(), 4);
        assert_eq!(replay.edge_count(), 0);
    }

    #[test]
    fn adversarial_star_builds_star() {
        let stream = adversarial_star_stream(6);
        let mut g = DynGraph::new();
        for c in &stream {
            c.apply(&mut g).unwrap();
        }
        assert_eq!(g.degree(NodeId(0)), Some(5));
        assert_eq!(g.edge_count(), 5);
    }

    fn replay(g: &DynGraph, stream: &[TopologyChange]) -> DynGraph {
        let mut replay = g.clone();
        for c in stream {
            c.apply(&mut replay)
                .unwrap_or_else(|e| panic!("stream must replay cleanly: {e} at {c:?}"));
        }
        replay.assert_consistent();
        replay
    }

    #[test]
    fn power_law_churn_is_seed_deterministic_and_replayable() {
        let (g, ids) = generators::chung_lu(60, 4.0, 2.5, &mut StdRng::seed_from_u64(8));
        let s1 = power_law_churn(&g, &ids, 2.5, 200, &mut StdRng::seed_from_u64(9));
        let s2 = power_law_churn(&g, &ids, 2.5, 200, &mut StdRng::seed_from_u64(9));
        assert_eq!(s1, s2);
        let s3 = power_law_churn(&g, &ids, 2.5, 200, &mut StdRng::seed_from_u64(10));
        assert_ne!(s1, s3, "different seeds give different streams");
        assert_eq!(s1.len(), 200);
        replay(&g, &s1);
    }

    #[test]
    fn power_law_churn_concentrates_on_hubs() {
        let (g, ids) = generators::chung_lu(100, 4.0, 2.5, &mut StdRng::seed_from_u64(11));
        let stream = power_law_churn(&g, &ids, 2.5, 400, &mut StdRng::seed_from_u64(12));
        let head: std::collections::BTreeSet<NodeId> = ids[..10].iter().copied().collect();
        let touches_head = stream
            .iter()
            .filter(|c| match c {
                TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
                    head.contains(u) || head.contains(v)
                }
                _ => false,
            })
            .count();
        assert!(
            touches_head * 2 > stream.len(),
            "most toggles must touch a front-of-order hub: {touches_head}/400"
        );
    }

    #[test]
    fn community_churn_is_mostly_intra_block() {
        let (g, ids) = generators::gnm(80, 60, &mut StdRng::seed_from_u64(13));
        let communities = 8;
        let stream = community_churn(
            &g,
            &ids,
            communities,
            0.05,
            400,
            &mut StdRng::seed_from_u64(14),
        );
        assert_eq!(stream.len(), 400);
        let block = ids.len() / communities;
        let block_of = |v: NodeId| {
            let i = ids.iter().position(|&w| w == v).unwrap();
            (i / block).min(communities - 1)
        };
        let cross = stream
            .iter()
            .filter(|c| match c {
                TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
                    block_of(*u) != block_of(*v)
                }
                _ => false,
            })
            .count();
        assert!(
            cross * 4 < stream.len(),
            "inter=0.05 must keep cross-block traffic rare: {cross}/400"
        );
        replay(&g, &stream);
        let same_seed = community_churn(
            &g,
            &ids,
            communities,
            0.05,
            400,
            &mut StdRng::seed_from_u64(14),
        );
        assert_eq!(stream, same_seed);
    }

    #[test]
    fn sliding_window_never_removes_before_inserting() {
        let (g, ids) = generators::gnm(40, 30, &mut StdRng::seed_from_u64(15));
        let stream = sliding_window_stream(&g, &ids, 16, 500, &mut StdRng::seed_from_u64(16));
        assert_eq!(stream.len(), 500);
        let mut window: std::collections::BTreeSet<EdgeKey> = std::collections::BTreeSet::new();
        for c in &stream {
            match c {
                TopologyChange::InsertEdge(u, v) => {
                    assert!(
                        window.insert(EdgeKey::new(*u, *v)),
                        "re-inserted a live edge"
                    );
                }
                TopologyChange::DeleteEdge(u, v) => {
                    assert!(
                        window.remove(&EdgeKey::new(*u, *v)),
                        "deleted an edge the stream never inserted (initial edges must survive)"
                    );
                }
                other => panic!("sliding window emits only edge changes, got {other:?}"),
            }
        }
        let end = replay(&g, &stream);
        assert!(
            end.edge_count() >= g.edge_count(),
            "initial edges survive, plus whatever is still in the window"
        );
        let same_seed = sliding_window_stream(&g, &ids, 16, 500, &mut StdRng::seed_from_u64(16));
        assert_eq!(stream, same_seed);
    }

    #[test]
    fn sliding_window_caps_live_window_edges() {
        let (g, ids) = generators::path(12);
        let window = 5;
        let stream = sliding_window_stream(&g, &ids, window, 300, &mut StdRng::seed_from_u64(17));
        let mut live = 0usize;
        for c in &stream {
            match c {
                TopologyChange::InsertEdge(..) => live += 1,
                TopologyChange::DeleteEdge(..) => live -= 1,
                _ => unreachable!(),
            }
            assert!(live <= window, "window overflow: {live} > {window}");
        }
    }

    #[test]
    fn fresh_pair_stream_never_revisits_a_key() {
        let (g, ids) = generators::gnm(40, 30, &mut StdRng::seed_from_u64(21));
        let stream = fresh_pair_stream(&g, &ids, 300, &mut StdRng::seed_from_u64(22));
        assert_eq!(stream.len(), 300);
        let mut seen: std::collections::BTreeSet<EdgeKey> = std::collections::BTreeSet::new();
        for c in &stream {
            let key = match c {
                TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
                    EdgeKey::new(*u, *v)
                }
                other => panic!("fresh pairs emit only edge changes, got {other:?}"),
            };
            assert!(seen.insert(key), "edge key revisited: {key:?}");
        }
        replay(&g, &stream);
        let same_seed = fresh_pair_stream(&g, &ids, 300, &mut StdRng::seed_from_u64(22));
        assert_eq!(stream, same_seed);
    }

    #[test]
    fn fresh_pair_stream_spends_present_edges_when_saturated() {
        // K5 on 5 nodes has only 10 pair keys: the stream must end at 10,
        // spending initial edges as deletes once the absent pairs run out.
        let (g, ids) = generators::complete(5);
        let stream = fresh_pair_stream(&g, &ids, 50, &mut StdRng::seed_from_u64(23));
        assert_eq!(stream.len(), 10, "pair space bounds the stream length");
        assert!(stream
            .iter()
            .all(|c| matches!(c, TopologyChange::DeleteEdge(..))));
        replay(&g, &stream);
    }

    #[test]
    fn barrier_churn_is_replayable_and_barrier_dense() {
        let (g, ids) = generators::gnm(30, 25, &mut StdRng::seed_from_u64(24));
        let pool = random_pair_pool(&g, 12, &mut StdRng::seed_from_u64(25));
        let stream = barrier_churn(&g, &pool, 3, 3, 300, &mut StdRng::seed_from_u64(26));
        assert_eq!(stream.len(), 300);
        let barriers = stream
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    TopologyChange::InsertNode { .. } | TopologyChange::DeleteNode(..)
                )
            })
            .count();
        assert_eq!(barriers, 100, "every third change is a node barrier");
        let initial: std::collections::BTreeSet<NodeId> = ids.iter().copied().collect();
        for c in &stream {
            if let TopologyChange::DeleteNode(v) = c {
                assert!(
                    !initial.contains(v),
                    "only stream-inserted nodes may be deleted"
                );
            }
        }
        replay(&g, &stream);
        let same_seed = barrier_churn(&g, &pool, 3, 3, 300, &mut StdRng::seed_from_u64(26));
        assert_eq!(stream, same_seed);
    }

    #[test]
    fn randomize_distributed_projects_back() {
        let mut rng = StdRng::seed_from_u64(5);
        let changes = [
            TopologyChange::InsertEdge(NodeId(0), NodeId(1)),
            TopologyChange::DeleteEdge(NodeId(0), NodeId(1)),
            TopologyChange::InsertNode {
                id: NodeId(2),
                edges: vec![NodeId(0)],
            },
            TopologyChange::DeleteNode(NodeId(2)),
        ];
        for c in &changes {
            for _ in 0..8 {
                let d = randomize_distributed(c, &mut rng);
                assert_eq!(&d.to_topology(), c);
            }
        }
    }
}
