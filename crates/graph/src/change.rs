use std::fmt;

use crate::{DynGraph, GraphError, NodeId};

/// Coarse classification of a topology change, used for grouping metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// An edge was inserted.
    EdgeInsert,
    /// An edge was deleted.
    EdgeDelete,
    /// A node was inserted (with its initial edges).
    NodeInsert,
    /// A node was deleted.
    NodeDelete,
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChangeKind::EdgeInsert => "edge-insert",
            ChangeKind::EdgeDelete => "edge-delete",
            ChangeKind::NodeInsert => "node-insert",
            ChangeKind::NodeDelete => "node-delete",
        };
        f.write_str(s)
    }
}

/// One of the four template-level topology changes of Section 3 of the paper.
///
/// The template (Algorithm 1) is model-agnostic and only distinguishes these
/// four cases; the communication-level refinements (graceful vs. abrupt
/// deletion, unmuting) live in [`DistributedChange`].
///
/// `InsertNode` carries the identifier pre-assigned by the driver so that a
/// change can be described before being applied, which the experiment
/// harness needs in order to correlate receipts across algorithm variants.
///
/// # Example
///
/// ```
/// use dmis_graph::{DynGraph, TopologyChange};
///
/// let (mut g, ids) = DynGraph::with_nodes(2);
/// let change = TopologyChange::InsertEdge(ids[0], ids[1]);
/// change.apply(&mut g)?;
/// assert!(g.has_edge(ids[0], ids[1]));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyChange {
    /// Insert the edge `{u, v}` (both nodes must already exist).
    InsertEdge(NodeId, NodeId),
    /// Delete the edge `{u, v}`.
    DeleteEdge(NodeId, NodeId),
    /// Insert a new node together with edges to the listed existing nodes.
    InsertNode {
        /// Identifier the new node will receive (must match the graph's next
        /// fresh identifier when applied).
        id: NodeId,
        /// Initial neighbors of the new node.
        edges: Vec<NodeId>,
    },
    /// Delete a node and all its incident edges.
    DeleteNode(NodeId),
}

impl TopologyChange {
    /// Returns the coarse [`ChangeKind`] of this change.
    #[must_use]
    pub fn kind(&self) -> ChangeKind {
        match self {
            TopologyChange::InsertEdge(..) => ChangeKind::EdgeInsert,
            TopologyChange::DeleteEdge(..) => ChangeKind::EdgeDelete,
            TopologyChange::InsertNode { .. } => ChangeKind::NodeInsert,
            TopologyChange::DeleteNode(..) => ChangeKind::NodeDelete,
        }
    }

    /// Applies the change to `g`.
    ///
    /// # Errors
    ///
    /// Propagates the corresponding [`GraphError`] if the change is invalid
    /// for the current graph (missing endpoints, duplicate edge, identifier
    /// mismatch reported as [`GraphError::MissingNode`]).
    pub fn apply(&self, g: &mut DynGraph) -> Result<(), GraphError> {
        match self {
            TopologyChange::InsertEdge(u, v) => g.insert_edge(*u, *v),
            TopologyChange::DeleteEdge(u, v) => g.remove_edge(*u, *v),
            TopologyChange::InsertNode { id, edges } => {
                let got = g.add_node_with_edges(edges.iter().copied())?;
                if got != *id {
                    // The driver pre-assigned a stale identifier; undo.
                    g.remove_node(got).expect("node was just inserted");
                    return Err(GraphError::MissingNode(*id));
                }
                Ok(())
            }
            TopologyChange::DeleteNode(v) => g.remove_node(*v).map(|_| ()),
        }
    }
}

impl fmt::Display for TopologyChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyChange::InsertEdge(u, v) => write!(f, "insert-edge({u}, {v})"),
            TopologyChange::DeleteEdge(u, v) => write!(f, "delete-edge({u}, {v})"),
            TopologyChange::InsertNode { id, edges } => {
                write!(f, "insert-node({id}, deg {})", edges.len())
            }
            TopologyChange::DeleteNode(v) => write!(f, "delete-node({v})"),
        }
    }
}

/// A topology change as observed by the *distributed* system (Section 2 of
/// the paper), refining [`TopologyChange`] with the communication-relevant
/// distinctions:
///
/// - **graceful vs. abrupt deletion** — a gracefully deleted node (edge) may
///   still relay messages until the system is stable again; an abruptly
///   deleted one cannot;
/// - **node insertion vs. unmuting** — an unmuted node has been listening to
///   its neighbors all along and already knows their states and random IDs,
///   whereas a fresh node knows nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributedChange {
    /// Insert the edge `{u, v}`; endpoints learn of each other.
    InsertEdge(NodeId, NodeId),
    /// Delete the edge `{u, v}`; the edge can relay messages until stability.
    GracefulDeleteEdge(NodeId, NodeId),
    /// Delete the edge `{u, v}`; it disappears immediately.
    AbruptDeleteEdge(NodeId, NodeId),
    /// Insert a brand-new node that knows nothing about its neighborhood.
    InsertNode {
        /// Identifier the new node will receive.
        id: NodeId,
        /// Initial neighbors.
        edges: Vec<NodeId>,
    },
    /// A previously muted (listening-only) node becomes visible. It already
    /// knows its neighbors' states and random IDs.
    UnmuteNode {
        /// Identifier the unmuted node will receive in the graph.
        id: NodeId,
        /// Neighbors it connects to.
        edges: Vec<NodeId>,
    },
    /// Delete a node that may keep relaying messages until stability.
    GracefulDeleteNode(NodeId),
    /// Delete a node that disappears immediately; its neighbors only observe
    /// the disappearance.
    AbruptDeleteNode(NodeId),
}

impl DistributedChange {
    /// Projects this distributed change onto the template-level
    /// [`TopologyChange`] it realizes.
    #[must_use]
    pub fn to_topology(&self) -> TopologyChange {
        match self {
            DistributedChange::InsertEdge(u, v) => TopologyChange::InsertEdge(*u, *v),
            DistributedChange::GracefulDeleteEdge(u, v)
            | DistributedChange::AbruptDeleteEdge(u, v) => TopologyChange::DeleteEdge(*u, *v),
            DistributedChange::InsertNode { id, edges }
            | DistributedChange::UnmuteNode { id, edges } => TopologyChange::InsertNode {
                id: *id,
                edges: edges.clone(),
            },
            DistributedChange::GracefulDeleteNode(v) | DistributedChange::AbruptDeleteNode(v) => {
                TopologyChange::DeleteNode(*v)
            }
        }
    }

    /// Returns the coarse [`ChangeKind`].
    #[must_use]
    pub fn kind(&self) -> ChangeKind {
        self.to_topology().kind()
    }

    /// Short label used in experiment tables (matches the paper's wording).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DistributedChange::InsertEdge(..) => "edge-insertion",
            DistributedChange::GracefulDeleteEdge(..) => "graceful-edge-deletion",
            DistributedChange::AbruptDeleteEdge(..) => "abrupt-edge-deletion",
            DistributedChange::InsertNode { .. } => "node-insertion",
            DistributedChange::UnmuteNode { .. } => "node-unmuting",
            DistributedChange::GracefulDeleteNode(..) => "graceful-node-deletion",
            DistributedChange::AbruptDeleteNode(..) => "abrupt-node-deletion",
        }
    }
}

impl fmt::Display for DistributedChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_edge_changes() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        TopologyChange::InsertEdge(ids[0], ids[1])
            .apply(&mut g)
            .unwrap();
        assert!(g.has_edge(ids[0], ids[1]));
        TopologyChange::DeleteEdge(ids[0], ids[1])
            .apply(&mut g)
            .unwrap();
        assert!(!g.has_edge(ids[0], ids[1]));
    }

    #[test]
    fn apply_node_changes() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        let fresh = NodeId(2);
        TopologyChange::InsertNode {
            id: fresh,
            edges: vec![ids[0], ids[1]],
        }
        .apply(&mut g)
        .unwrap();
        assert_eq!(g.degree(fresh), Some(2));
        TopologyChange::DeleteNode(fresh).apply(&mut g).unwrap();
        assert!(!g.has_node(fresh));
    }

    #[test]
    fn insert_node_with_stale_id_is_rolled_back() {
        let (mut g, ids) = DynGraph::with_nodes(1);
        let stale = NodeId(40);
        let err = TopologyChange::InsertNode {
            id: stale,
            edges: vec![ids[0]],
        }
        .apply(&mut g)
        .unwrap_err();
        assert_eq!(err, GraphError::MissingNode(stale));
        assert_eq!(g.node_count(), 1, "rolled back");
        g.assert_consistent();
    }

    #[test]
    fn kinds_and_labels() {
        let c = DistributedChange::AbruptDeleteNode(NodeId(3));
        assert_eq!(c.kind(), ChangeKind::NodeDelete);
        assert_eq!(c.label(), "abrupt-node-deletion");
        assert_eq!(c.to_topology(), TopologyChange::DeleteNode(NodeId(3)));
        assert_eq!(format!("{c}"), "abrupt-node-deletion");
        assert_eq!(format!("{}", ChangeKind::NodeDelete), "node-delete");
    }

    #[test]
    fn unmute_projects_to_insert() {
        let c = DistributedChange::UnmuteNode {
            id: NodeId(5),
            edges: vec![NodeId(1)],
        };
        assert_eq!(c.kind(), ChangeKind::NodeInsert);
        assert_eq!(
            c.to_topology(),
            TopologyChange::InsertNode {
                id: NodeId(5),
                edges: vec![NodeId(1)]
            }
        );
    }

    #[test]
    fn display_formats() {
        let c = TopologyChange::InsertNode {
            id: NodeId(9),
            edges: vec![NodeId(0), NodeId(1)],
        };
        assert_eq!(format!("{c}"), "insert-node(n9, deg 2)");
    }
}
