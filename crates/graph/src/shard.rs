//! Shard layout: partitioning the dense `NodeId` index space.
//!
//! [`NodeId`]s are slot indices (see [`crate::storage`]), which makes
//! *range partitioning* of per-node state a pure index computation: a
//! [`ShardLayout`] cuts the identifier space into blocks of consecutive
//! indices and deals the blocks out to `K` shards round-robin. Every shard
//! then keeps its own dense [`NodeMap`](crate::NodeMap) /
//! [`NodeSet`](crate::NodeSet) tables keyed by the shard-**local** slot
//! returned by [`ShardLayout::local_slot`], so per-shard memory is
//! `O(nodes owned)`, not `O(all nodes ever)`.
//!
//! Two layouts matter in practice:
//!
//! - [`ShardLayout::striped`] (block = 1): node `i` lives on shard
//!   `i mod K`. Because the graph assigns identifiers monotonically, this
//!   balances load even under heavy node churn.
//! - [`ShardLayout::blocked`]: runs of `block` consecutive identifiers
//!   stay together. Insertion-order locality (a node and the neighbors
//!   created around the same time) then tends to stay shard-local, which
//!   trades balance for fewer cross-shard cascades.
//!
//! The layout is pure arithmetic — no table, no allocation — so
//! `shard_of`/`local_slot` are cheap enough for the settle loop's inner
//! edge scan.

use crate::NodeId;

/// A partition of the `NodeId` index space into `K` shards by index range.
///
/// Blocks of `block` consecutive indices are assigned to shards
/// round-robin: node `i` belongs to shard `(i / block) mod K`, and its
/// dense *local* slot within that shard is obtained by deleting the other
/// shards' blocks from the index space ([`Self::local_slot`]). Both
/// mappings are bijective on the owned range, so shard-local
/// [`NodeMap`](crate::NodeMap)/[`NodeSet`](crate::NodeSet) tables stay as
/// compact as the global ones.
///
/// # Example
///
/// ```
/// use dmis_graph::{NodeId, ShardLayout};
///
/// let layout = ShardLayout::striped(4);
/// assert_eq!(layout.shard_of(NodeId(6)), 2);
/// assert_eq!(layout.local_slot(NodeId(6)), NodeId(1));
///
/// let blocked = ShardLayout::blocked(2, 3);
/// // Indices 0,1,2 → shard 0; 3,4,5 → shard 1; 6,7,8 → shard 0 again.
/// assert_eq!(blocked.shard_of(NodeId(7)), 0);
/// assert_eq!(blocked.local_slot(NodeId(7)), NodeId(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    shards: usize,
    block: u64,
}

impl ShardLayout {
    /// A layout dealing single indices round-robin: node `i` on shard
    /// `i mod shards`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn striped(shards: usize) -> Self {
        Self::blocked(shards, 1)
    }

    /// A layout dealing blocks of `block` consecutive indices round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `block` is zero.
    #[must_use]
    pub fn blocked(shards: usize, block: u64) -> Self {
        assert!(shards > 0, "a layout needs at least one shard");
        assert!(block > 0, "blocks must hold at least one index");
        ShardLayout { shards, block }
    }

    /// The degenerate single-shard layout (everything local, no
    /// cross-shard traffic) — the unsharded baseline as a layout.
    #[must_use]
    pub fn single() -> Self {
        Self::striped(1)
    }

    /// Number of shards `K`.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Block length of the range partition.
    #[must_use]
    pub fn block(&self) -> u64 {
        self.block
    }

    /// The shard owning `id`.
    #[must_use]
    pub fn shard_of(&self, id: NodeId) -> usize {
        ((id.index() / self.block) % self.shards as u64) as usize
    }

    /// The dense slot of `id` within its owning shard.
    ///
    /// Collapses the owning shard's blocks into a contiguous index space:
    /// the j-th smallest identifier a shard can own maps to local slot
    /// `j`. Pair with [`Self::shard_of`] to address shard-local
    /// [`NodeMap`](crate::NodeMap)/[`NodeSet`](crate::NodeSet) tables.
    #[must_use]
    pub fn local_slot(&self, id: NodeId) -> NodeId {
        let i = id.index();
        let stride = self.block * self.shards as u64;
        NodeId((i / stride) * self.block + i % self.block)
    }

    /// Upper bound on the local slots any one shard owns among
    /// identifiers `0..n` — the per-shard table capacity that makes a
    /// bootstrap of `n` nodes regrow-free. Tight to within one block.
    #[must_use]
    pub fn local_span(&self, n: usize) -> usize {
        let stride = self.block * self.shards as u64;
        usize::try_from((n as u64).div_ceil(stride) * self.block).expect("span fits in usize")
    }

    /// Returns `true` if `u` and `v` live on different shards — i.e. the
    /// edge `{u, v}` spans a shard boundary and state changes crossing it
    /// need a handoff.
    #[must_use]
    pub fn crosses(&self, u: NodeId, v: NodeId) -> bool {
        self.shard_of(u) != self.shard_of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_deals_round_robin() {
        let layout = ShardLayout::striped(3);
        let shards: Vec<usize> = (0..9).map(|i| layout.shard_of(NodeId(i))).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let locals: Vec<u64> = (0..9)
            .map(|i| layout.local_slot(NodeId(i)).index())
            .collect();
        assert_eq!(locals, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn blocked_keeps_runs_together() {
        let layout = ShardLayout::blocked(2, 4);
        assert_eq!(layout.shard_of(NodeId(3)), 0);
        assert_eq!(layout.shard_of(NodeId(4)), 1);
        assert_eq!(layout.shard_of(NodeId(9)), 0);
        // Shard 0 owns 0..4 and 8..12: local slots are contiguous.
        assert_eq!(layout.local_slot(NodeId(3)), NodeId(3));
        assert_eq!(layout.local_slot(NodeId(9)), NodeId(5));
        // Shard 1 owns 4..8 and 12..16.
        assert_eq!(layout.local_slot(NodeId(4)), NodeId(0));
        assert_eq!(layout.local_slot(NodeId(13)), NodeId(5));
    }

    #[test]
    fn local_slots_are_dense_and_bijective_per_shard() {
        for &(k, block) in &[(1usize, 1u64), (2, 1), (4, 3), (7, 2), (3, 5)] {
            let layout = ShardLayout::blocked(k, block);
            let mut seen = vec![Vec::new(); k];
            for i in 0..200u64 {
                let id = NodeId(i);
                seen[layout.shard_of(id)].push(layout.local_slot(id).index());
            }
            for locals in seen {
                // Each shard's local slots enumerate 0..len without gaps.
                let expect: Vec<u64> = (0..locals.len() as u64).collect();
                assert_eq!(locals, expect, "k={k} block={block}");
            }
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let layout = ShardLayout::single();
        assert_eq!(layout.shards(), 1);
        for i in [0u64, 1, 63, 64, 1000] {
            assert_eq!(layout.shard_of(NodeId(i)), 0);
            assert_eq!(layout.local_slot(NodeId(i)), NodeId(i));
        }
    }

    #[test]
    fn local_span_bounds_every_owned_slot() {
        for &(k, block) in &[(1usize, 1u64), (2, 1), (4, 3), (7, 2), (3, 5)] {
            let layout = ShardLayout::blocked(k, block);
            for n in [1usize, 5, 64, 199] {
                let span = layout.local_span(n);
                for i in 0..n as u64 {
                    assert!(
                        (layout.local_slot(NodeId(i)).index() as usize) < span,
                        "k={k} block={block} n={n} id={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn crosses_detects_boundary_edges() {
        let layout = ShardLayout::striped(2);
        assert!(layout.crosses(NodeId(0), NodeId(1)));
        assert!(!layout.crosses(NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardLayout::striped(0);
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn zero_block_rejected() {
        let _ = ShardLayout::blocked(2, 0);
    }
}
