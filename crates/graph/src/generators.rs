//! Graph family generators.
//!
//! Every family referenced by the paper's examples and lower bounds is here:
//! stars (Section 5, Example 1), disjoint 3-edge paths (Example 2), complete
//! bipartite graphs minus a perfect matching (Example 3), complete bipartite
//! graphs (the deterministic lower bound of Section 1.1), plus the standard
//! random families (Erdős–Rényi, Barabási–Albert) and structured families
//! (paths, cycles, grids, complete graphs) our experiments sweep over.
//!
//! All generators return the graph together with the node identifiers in a
//! documented order so that callers can address structurally meaningful
//! nodes (e.g. the star center is always `ids[0]`).

use rand::seq::IndexedRandom;
use rand::Rng;

use crate::{DynGraph, NodeId};

/// Star on `n` nodes: `ids[0]` is the center, `ids[1..]` the leaves.
///
/// Used by Section 5, Example 1 of the paper: random greedy yields an MIS of
/// expected size `(n-1)(1 - 1/n) + 1/n`, versus the worst-case MIS of size 1.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn star(n: usize) -> (DynGraph, Vec<NodeId>) {
    assert!(n > 0, "a star needs at least a center");
    let (mut g, ids) = DynGraph::with_nodes(n);
    for &leaf in &ids[1..] {
        g.insert_edge(ids[0], leaf).expect("fresh edges");
    }
    (g, ids)
}

/// Simple path on `n` nodes, edges between consecutive identifiers.
#[must_use]
pub fn path(n: usize) -> (DynGraph, Vec<NodeId>) {
    let (mut g, ids) = DynGraph::with_nodes(n);
    for w in ids.windows(2) {
        g.insert_edge(w[0], w[1]).expect("fresh edges");
    }
    (g, ids)
}

/// Cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> (DynGraph, Vec<NodeId>) {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let (mut g, ids) = path(n);
    g.insert_edge(ids[n - 1], ids[0]).expect("fresh edge");
    (g, ids)
}

/// Complete graph on `n` nodes.
#[must_use]
pub fn complete(n: usize) -> (DynGraph, Vec<NodeId>) {
    let (mut g, ids) = DynGraph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.insert_edge(ids[i], ids[j]).expect("fresh edges");
        }
    }
    (g, ids)
}

/// Complete bipartite graph `K_{a,b}`; returns `(graph, left, right)`.
///
/// This is the gadget of the deterministic lower bound (Section 1.1): any
/// deterministic dynamic MIS algorithm run on a deletion cascade of one side
/// must at some step flip the entire output.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> (DynGraph, Vec<NodeId>, Vec<NodeId>) {
    let (mut g, ids) = DynGraph::with_nodes(a + b);
    let (left, right) = ids.split_at(a);
    for &u in left {
        for &v in right {
            g.insert_edge(u, v).expect("fresh edges");
        }
    }
    (g, left.to_vec(), right.to_vec())
}

/// Complete bipartite graph `K_{k,k}` minus a perfect matching: `left[i]` is
/// adjacent to every `right[j]` with `j ≠ i`.
///
/// Section 5, Example 3: random greedy coloring 2-colors this graph with
/// probability `1 - 1/n`.
#[must_use]
pub fn bipartite_minus_matching(k: usize) -> (DynGraph, Vec<NodeId>, Vec<NodeId>) {
    let (mut g, ids) = DynGraph::with_nodes(2 * k);
    let (left, right) = ids.split_at(k);
    for (i, &u) in left.iter().enumerate() {
        for (j, &v) in right.iter().enumerate() {
            if i != j {
                g.insert_edge(u, v).expect("fresh edges");
            }
        }
    }
    (g, left.to_vec(), right.to_vec())
}

/// `k` disjoint paths of 3 edges (4 nodes) each; returns the graph and, per
/// path, its 4 node identifiers in order.
///
/// Section 5, Example 2: the maximal matching obtained by random greedy on
/// the line graph has expected size `2·(2/3) + 1·(1/3) = 5/3` per path, i.e.
/// `5n/12` for `n = 4k` nodes, versus the worst case of `n/4`.
#[must_use]
pub fn disjoint_three_paths(k: usize) -> (DynGraph, Vec<[NodeId; 4]>) {
    let (mut g, ids) = DynGraph::with_nodes(4 * k);
    let mut paths = Vec::with_capacity(k);
    for chunk in ids.chunks_exact(4) {
        g.insert_edge(chunk[0], chunk[1]).expect("fresh edges");
        g.insert_edge(chunk[1], chunk[2]).expect("fresh edges");
        g.insert_edge(chunk[2], chunk[3]).expect("fresh edges");
        paths.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    (g, paths)
}

/// Two-dimensional grid with `rows × cols` nodes; `ids[r * cols + c]` is the
/// node at `(r, c)`.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> (DynGraph, Vec<NodeId>) {
    let (mut g, ids) = DynGraph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = ids[r * cols + c];
            if c + 1 < cols {
                g.insert_edge(v, ids[r * cols + c + 1])
                    .expect("fresh edges");
            }
            if r + 1 < rows {
                g.insert_edge(v, ids[(r + 1) * cols + c])
                    .expect("fresh edges");
            }
        }
    }
    (g, ids)
}

/// Erdős–Rényi random graph `G(n, p)`: every pair becomes an edge
/// independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
#[must_use]
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> (DynGraph, Vec<NodeId>) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let (mut g, ids) = DynGraph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(p) {
                g.insert_edge(ids[i], ids[j]).expect("fresh edges");
            }
        }
    }
    (g, ids)
}

/// Erdős–Rényi `G(n, m)` variant: exactly `m` distinct edges drawn uniformly.
///
/// # Panics
///
/// Panics if `m` exceeds the number of node pairs.
#[must_use]
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> (DynGraph, Vec<NodeId>) {
    let pairs = n * n.saturating_sub(1) / 2;
    assert!(m <= pairs, "too many edges requested");
    let (mut g, ids) = DynGraph::with_nodes(n);
    let mut inserted = 0usize;
    while inserted < m {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j && g.insert_edge(ids[i], ids[j]).is_ok() {
            inserted += 1;
        }
    }
    (g, ids)
}

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// `m` nodes, then each of the remaining `n - m` nodes attaches to `m`
/// distinct existing nodes chosen with probability proportional to degree.
///
/// Produces the heavy-tailed degree distributions under which the constant
/// broadcast bound for abrupt deletions (`O(min{log n, d(v*)})`) is
/// interesting to observe.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m`.
#[must_use]
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> (DynGraph, Vec<NodeId>) {
    assert!(m > 0 && n >= m, "need n >= m >= 1");
    let (mut g, ids) = DynGraph::with_nodes(n);
    // Seed clique.
    for i in 0..m {
        for j in (i + 1)..m {
            g.insert_edge(ids[i], ids[j]).expect("fresh edges");
        }
    }
    // Repeated-endpoints list implements preferential attachment.
    let mut endpoints: Vec<usize> = Vec::new();
    for i in 0..m {
        for _ in 0..m.saturating_sub(1).max(1) {
            endpoints.push(i);
        }
    }
    for i in m..n {
        // Sorted, deduplicated target list: same draw sequence and the
        // same ascending edge-insertion order a BTreeSet would give.
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = if endpoints.is_empty() {
                rng.random_range(0..i)
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            if let Err(pos) = targets.binary_search(&t) {
                targets.insert(pos, t);
            }
        }
        for &t in &targets {
            g.insert_edge(ids[i], ids[t]).expect("fresh edges");
            endpoints.push(t);
            endpoints.push(i);
        }
    }
    (g, ids)
}

/// Chung–Lu random graph with a power-law expected-degree sequence of
/// exponent `beta`: node `ids[i]` carries weight `w_i ∝ (i + 1)^{-1/(β-1)}`
/// (so `ids[0]` is the heaviest hub), scaled so the mean weight is
/// `avg_degree` and capped at `√S` (`S = Σw`) so every pair probability
/// `w_i·w_j / S` is a probability. Pairs are sampled in `O(n + m)` expected
/// time with the Miller–Hagberg skip walk: for a fixed `i`, the surviving
/// partners `j > i` are found by geometric jumps under the monotone upper
/// bound `w_i·w_j / S ≤ w_i·w_{j'}/ S` for `j' ≤ j`, then thinned to the
/// exact probability — never touching the `Θ(n²)` rejected pairs.
///
/// The weight cap puts the expected hub degree at `Θ(√(d·n))`, so the
/// realized maximum degree grows as `√n` — the regime that distinguishes a
/// chunked adjacency layout from a flat one.
///
/// # Panics
///
/// Panics if `beta ≤ 2` (infinite-mean regime) or `avg_degree ≤ 0`.
#[must_use]
pub fn chung_lu<R: Rng + ?Sized>(
    n: usize,
    avg_degree: f64,
    beta: f64,
    rng: &mut R,
) -> (DynGraph, Vec<NodeId>) {
    assert!(beta > 2.0, "need beta > 2 for a finite mean degree");
    assert!(avg_degree > 0.0, "need a positive average degree");
    let (mut g, ids) = DynGraph::with_nodes(n);
    if n < 2 {
        return (g, ids);
    }
    let gamma = 1.0 / (beta - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let scale = avg_degree * n as f64 / weights.iter().sum::<f64>();
    let total: f64 = weights.iter().map(|w| w * scale).sum();
    let cap = total.sqrt();
    for w in &mut weights {
        *w = (*w * scale).min(cap);
    }
    for i in 0..n - 1 {
        // Walk j upward under the running bound p (exact for j = i + 1,
        // an over-estimate after skips), thinning each landing to the
        // exact probability q.
        let mut j = i + 1;
        let mut p = (weights[i] * weights[j] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.random();
                j += (r.ln() / (1.0 - p).ln()).floor() as usize;
            }
            if j >= n {
                break;
            }
            let q = (weights[i] * weights[j] / total).min(1.0);
            if rng.random::<f64>() < q / p {
                g.insert_edge(ids[i], ids[j]).expect("fresh edges");
            }
            p = q;
            j += 1;
        }
    }
    (g, ids)
}

/// Random bipartite graph: each of the `a × b` cross pairs is an edge with
/// probability `p`.
#[must_use]
pub fn random_bipartite<R: Rng + ?Sized>(
    a: usize,
    b: usize,
    p: f64,
    rng: &mut R,
) -> (DynGraph, Vec<NodeId>, Vec<NodeId>) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let (mut g, ids) = DynGraph::with_nodes(a + b);
    let (left, right) = ids.split_at(a);
    for &u in left {
        for &v in right {
            if rng.random_bool(p) {
                g.insert_edge(u, v).expect("fresh edges");
            }
        }
    }
    (g, left.to_vec(), right.to_vec())
}

/// A random tree on `n` nodes (uniform attachment: node `i` connects to a
/// uniformly random earlier node).
#[must_use]
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (DynGraph, Vec<NodeId>) {
    let (mut g, ids) = DynGraph::with_nodes(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        g.insert_edge(ids[i], ids[parent]).expect("fresh edges");
    }
    (g, ids)
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// whenever two points are within distance `radius`.
///
/// The natural model for the broadcast (wireless-flavored) communication
/// setting; used by the long-lived churn experiment (E14).
#[must_use]
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> (DynGraph, Vec<NodeId>) {
    assert!(radius >= 0.0, "radius must be non-negative");
    let (mut g, ids) = DynGraph::with_nodes(n);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            if dx * dx + dy * dy <= r2 {
                g.insert_edge(ids[i], ids[j]).expect("fresh edges");
            }
        }
    }
    (g, ids)
}

/// Returns a uniformly random edge of `g`, or `None` if the graph has no
/// edges.
#[must_use]
pub fn random_edge<R: Rng + ?Sized>(g: &DynGraph, rng: &mut R) -> Option<(NodeId, NodeId)> {
    let edges: Vec<_> = g.edges().collect();
    edges.choose(rng).map(|k| k.endpoints())
}

/// Returns a uniformly random node of `g`, or `None` if the graph is empty.
#[must_use]
pub fn random_node<R: Rng + ?Sized>(g: &DynGraph, rng: &mut R) -> Option<NodeId> {
    let nodes: Vec<_> = g.nodes().collect();
    nodes.choose(rng).copied()
}

/// Returns a uniformly random *non*-edge (pair of distinct, non-adjacent
/// nodes), or `None` if the graph is complete or has fewer than two nodes.
#[must_use]
pub fn random_non_edge<R: Rng + ?Sized>(g: &DynGraph, rng: &mut R) -> Option<(NodeId, NodeId)> {
    let nodes: Vec<_> = g.nodes().collect();
    let n = nodes.len();
    if n < 2 {
        return None;
    }
    let pairs = n * (n - 1) / 2;
    if g.edge_count() >= pairs {
        return None;
    }
    // Rejection sampling terminates quickly except on near-complete graphs;
    // fall back to enumeration after a bounded number of attempts.
    for _ in 0..4 * pairs.max(16) {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j && !g.has_edge(nodes[i], nodes[j]) {
            return Some((nodes[i], nodes[j]));
        }
    }
    let mut non_edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !g.has_edge(nodes[i], nodes[j]) {
                non_edges.push((nodes[i], nodes[j]));
            }
        }
    }
    non_edges.choose(rng).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_shape() {
        let (g, ids) = star(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(ids[0]), Some(4));
        for &leaf in &ids[1..] {
            assert_eq!(g.degree(leaf), Some(1));
        }
        g.assert_consistent();
    }

    #[test]
    fn path_and_cycle_shape() {
        let (p, _) = path(6);
        assert_eq!(p.edge_count(), 5);
        let (c, ids) = cycle(6);
        assert_eq!(c.edge_count(), 6);
        assert!(c.has_edge(ids[5], ids[0]));
        for &v in &ids {
            assert_eq!(c.degree(v), Some(2));
        }
    }

    #[test]
    fn complete_counts() {
        let (g, _) = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_bipartite_counts() {
        let (g, left, right) = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        for &u in &left {
            assert_eq!(g.degree(u), Some(4));
        }
        for &v in &right {
            assert_eq!(g.degree(v), Some(3));
        }
        // No intra-side edges.
        assert!(!g.has_edge(left[0], left[1]));
        assert!(!g.has_edge(right[0], right[1]));
    }

    #[test]
    fn bipartite_minus_matching_shape() {
        let k = 5;
        let (g, left, right) = bipartite_minus_matching(k);
        assert_eq!(g.edge_count(), k * (k - 1));
        for i in 0..k {
            assert!(
                !g.has_edge(left[i], right[i]),
                "matched pair must be absent"
            );
            assert_eq!(g.degree(left[i]), Some(k - 1));
        }
    }

    #[test]
    fn three_paths_shape() {
        let (g, paths) = disjoint_three_paths(3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 9);
        for p in &paths {
            assert!(g.has_edge(p[0], p[1]));
            assert!(g.has_edge(p[1], p[2]));
            assert!(g.has_edge(p[2], p[3]));
            assert!(!g.has_edge(p[0], p[3]));
        }
    }

    #[test]
    fn grid_shape() {
        let (g, ids) = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(ids[0]), Some(2), "corner");
        assert_eq!(g.degree(ids[5]), Some(4), "interior");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let (empty, _) = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let (full, _) = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let (g1, _) = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(42));
        let (g2, _) = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = gnm(15, 30, &mut rng);
        assert_eq!(g.edge_count(), 30);
        g.assert_consistent();
    }

    #[test]
    fn barabasi_albert_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 60;
        let m = 3;
        let (g, ids) = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.node_count(), n);
        for &v in &ids[m..] {
            assert!(g.degree(v).unwrap() >= m, "attached to m targets");
        }
        // Expected edge count: clique + m per later node.
        assert_eq!(g.edge_count(), m * (m - 1) / 2 + (n - m) * m);
        g.assert_consistent();
    }

    #[test]
    fn chung_lu_is_seed_deterministic_and_consistent() {
        let (g1, ids) = chung_lu(200, 6.0, 2.5, &mut StdRng::seed_from_u64(21));
        let (g2, _) = chung_lu(200, 6.0, 2.5, &mut StdRng::seed_from_u64(21));
        assert_eq!(g1, g2);
        let (g3, _) = chung_lu(200, 6.0, 2.5, &mut StdRng::seed_from_u64(22));
        assert_ne!(g1, g3, "different seeds give different graphs");
        g1.assert_consistent();
        assert_eq!(ids.len(), 200);
        assert!(g1.edge_count() > 0);
    }

    #[test]
    fn chung_lu_hubs_lead_the_id_order() {
        let mut rng = StdRng::seed_from_u64(33);
        let (g, ids) = chung_lu(400, 8.0, 2.5, &mut rng);
        let head: usize = ids[..20].iter().map(|&v| g.degree(v).unwrap()).sum();
        let tail: usize = ids[380..].iter().map(|&v| g.degree(v).unwrap()).sum();
        assert!(
            head > 4 * tail.max(1),
            "front-of-order hubs must dominate the tail: head {head} tail {tail}"
        );
    }

    #[test]
    fn chung_lu_tiny_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g0, ids0) = chung_lu(0, 4.0, 2.5, &mut rng);
        assert_eq!((g0.node_count(), ids0.len()), (0, 0));
        let (g1, _) = chung_lu(1, 4.0, 2.5, &mut rng);
        assert_eq!(g1.edge_count(), 0);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = random_tree(30, &mut rng);
        assert_eq!(g.edge_count(), 29);
        assert!(crate::is_connected(&g));
    }

    #[test]
    fn random_bipartite_has_no_intra_side_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, left, right) = random_bipartite(6, 7, 0.5, &mut rng);
        for i in 0..left.len() {
            for j in (i + 1)..left.len() {
                assert!(!g.has_edge(left[i], left[j]));
            }
        }
        for i in 0..right.len() {
            for j in (i + 1)..right.len() {
                assert!(!g.has_edge(right[i], right[j]));
            }
        }
    }

    #[test]
    fn random_geometric_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let (sparse, _) = random_geometric(20, 0.0, &mut rng);
        assert_eq!(sparse.edge_count(), 0);
        let (dense, _) = random_geometric(20, 2.0, &mut rng);
        assert_eq!(dense.edge_count(), 20 * 19 / 2, "√2 ≤ 2 covers the square");
        let (mid, _) = random_geometric(50, 0.3, &mut rng);
        assert!(mid.edge_count() > 0);
        mid.assert_consistent();
    }

    #[test]
    fn random_pick_helpers() {
        let mut rng = StdRng::seed_from_u64(13);
        let (g, _) = path(5);
        assert!(random_edge(&g, &mut rng).is_some());
        assert!(random_node(&g, &mut rng).is_some());
        let (u, v) = random_non_edge(&g, &mut rng).unwrap();
        assert!(!g.has_edge(u, v));
        let (k5, _) = complete(5);
        assert!(random_non_edge(&k5, &mut rng).is_none());
        let empty = DynGraph::new();
        assert!(random_edge(&empty, &mut rng).is_none());
        assert!(random_node(&empty, &mut rng).is_none());
        assert!(random_non_edge(&empty, &mut rng).is_none());
    }
}
