//! Small traversal utilities (BFS, connectivity, shortest paths).
//!
//! These are substrate helpers used by tests and by the asynchronous
//! simulator, which bounds causal chains by graph distances.

use std::collections::VecDeque;

use crate::{DynGraph, NodeId, NodeMap, NodeSet};

/// Returns the nodes reachable from `start` in BFS order (including
/// `start`), or an empty vector if `start` does not exist.
#[must_use]
pub fn bfs_order(g: &DynGraph, start: NodeId) -> Vec<NodeId> {
    if !g.has_node(start) {
        return Vec::new();
    }
    let mut seen = NodeSet::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in g.neighbors(v).expect("dequeued nodes exist") {
            if seen.insert(u) {
                queue.push_back(u);
            }
        }
    }
    order
}

/// Returns the connected components of `g`, each as a sorted vector, ordered
/// by their smallest member.
#[must_use]
pub fn connected_components(g: &DynGraph) -> Vec<Vec<NodeId>> {
    let mut unvisited = NodeSet::new();
    for v in g.nodes() {
        unvisited.insert(v);
    }
    let mut components = Vec::new();
    loop {
        let Some(start) = unvisited.iter().next() else {
            break;
        };
        let comp = bfs_order(g, start);
        for &v in &comp {
            unvisited.remove(v);
        }
        let mut comp = comp;
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Returns `true` if the graph is connected (the empty graph counts as
/// connected).
#[must_use]
pub fn is_connected(g: &DynGraph) -> bool {
    if g.is_empty() {
        return true;
    }
    let start = g.nodes().next().expect("non-empty");
    bfs_order(g, start).len() == g.node_count()
}

/// Returns the hop distance between `u` and `v`, or `None` if they are
/// disconnected or either node is missing.
#[must_use]
pub fn shortest_path_len(g: &DynGraph, u: NodeId, v: NodeId) -> Option<usize> {
    if !g.has_node(u) || !g.has_node(v) {
        return None;
    }
    let mut dist: NodeMap<usize> = NodeMap::new();
    let mut queue = VecDeque::new();
    dist.insert(u, 0);
    queue.push_back(u);
    while let Some(w) = queue.pop_front() {
        let d = *dist.get(w).expect("queued nodes have distances");
        if w == v {
            return Some(d);
        }
        for x in g.neighbors(w).expect("queued nodes exist") {
            if !dist.contains(x) {
                dist.insert(x, d + 1);
                queue.push_back(x);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_is_ordered() {
        let (g, ids) = generators::path(5);
        let order = bfs_order(&g, ids[0]);
        assert_eq!(order, ids);
        assert!(bfs_order(&g, NodeId(99)).is_empty());
    }

    #[test]
    fn components_of_disjoint_paths() {
        let (g, paths) = generators::disjoint_three_paths(3);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], paths[0].to_vec());
    }

    #[test]
    fn connectivity() {
        let (g, _) = generators::cycle(5);
        assert!(is_connected(&g));
        let (mut g2, ids) = generators::path(4);
        g2.remove_edge(ids[1], ids[2]).unwrap();
        assert!(!is_connected(&g2));
        assert!(is_connected(&DynGraph::new()));
    }

    #[test]
    fn distances() {
        let (g, ids) = generators::path(6);
        assert_eq!(shortest_path_len(&g, ids[0], ids[5]), Some(5));
        assert_eq!(shortest_path_len(&g, ids[2], ids[2]), Some(0));
        let (g2, paths) = generators::disjoint_three_paths(2);
        assert_eq!(shortest_path_len(&g2, paths[0][0], paths[1][0]), None);
        assert_eq!(shortest_path_len(&g2, NodeId(999), paths[0][0]), None);
    }
}
