//! Experiment runner: regenerates every quantitative claim of the paper.
//!
//! ```text
//! experiments [--quick] [e1 e2 ... | all]
//! ```
//!
//! With no experiment arguments, runs all of E1–E14. `--quick` shrinks
//! trial counts (used in CI); see the experiment index in `DESIGN.md`.

#![forbid(unsafe_code)]

use std::time::Instant;

use dmis_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let picked: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    println!("# Optimal Dynamic Distributed MIS — experiment suite");
    println!();
    println!(
        "mode: {} | started: (wall-clock timings per experiment below)",
        if quick { "quick" } else { "full" }
    );
    println!();

    let run_list: Vec<String> = if picked.is_empty() || picked.iter().any(|p| p == "all") {
        (1..=14).map(|i| format!("e{i}")).collect()
    } else {
        picked
    };

    for id in run_list {
        let start = Instant::now();
        match experiments::run_one(&id, quick) {
            Some(report) => {
                println!("{report}");
                println!("_({} completed in {:.1?})_", id, start.elapsed());
                println!();
            }
            None => {
                eprintln!("unknown experiment '{id}' — expected e1..e14 or all");
                std::process::exit(2);
            }
        }
    }
}
