//! BTree-backed reference engine: the storage layout the dense
//! [`dmis_core::MisEngine`] replaced.
//!
//! This is deliberately the *same algorithm* — lazily drawn priorities, a
//! lower-MIS-neighbor counter per node, settlement of dirty nodes in
//! increasing π order — over `BTreeMap`/`BTreeSet` per-node state instead
//! of the dense `NodeMap`/`NodeSet` containers. The `engine_updates` bench
//! runs both on identical churn workloads so the `BENCH_engine.json`
//! snapshot isolates the cost of the storage layout, not the algorithm.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use dmis_core::Priority;
use dmis_graph::{DynGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-greedy MIS maintainer with ordered-tree per-node state.
#[derive(Debug, Clone)]
pub struct BTreeMisEngine {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
    priorities: BTreeMap<NodeId, Priority>,
    in_mis: BTreeMap<NodeId, bool>,
    lower: BTreeMap<NodeId, usize>,
    next_id: u64,
    rng: StdRng,
}

impl BTreeMisEngine {
    /// Builds the engine over an existing graph, drawing fresh priorities
    /// from `seed` and computing the initial greedy MIS.
    #[must_use]
    pub fn from_graph(graph: &DynGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        let mut priorities = BTreeMap::new();
        for v in graph.nodes() {
            adj.insert(v, graph.neighbors(v).expect("live node").collect());
            priorities.insert(v, Priority::random(v, &mut rng));
        }
        let mut engine = BTreeMisEngine {
            adj,
            priorities,
            in_mis: BTreeMap::new(),
            lower: BTreeMap::new(),
            next_id: graph.peek_next_id().index(),
            rng,
        };
        // Initial states via sequential greedy in π order.
        let mut order: Vec<NodeId> = engine.adj.keys().copied().collect();
        order.sort_unstable_by_key(|v| engine.priorities[v]);
        for v in order {
            let dominated = engine.adj[&v]
                .iter()
                .any(|u| engine.in_mis.get(u) == Some(&true) && engine.before(*u, v));
            engine.in_mis.insert(v, !dominated);
        }
        for v in engine.adj.keys().copied().collect::<Vec<_>>() {
            let count = engine.count_lower(v);
            engine.lower.insert(v, count);
        }
        engine
    }

    fn before(&self, a: NodeId, b: NodeId) -> bool {
        self.priorities[&a] < self.priorities[&b]
    }

    fn count_lower(&self, v: NodeId) -> usize {
        self.adj[&v]
            .iter()
            .filter(|&&u| self.in_mis[&u] && self.before(u, v))
            .count()
    }

    /// Current MIS size (cheap output probe for benchmarks).
    #[must_use]
    pub fn mis_size(&self) -> usize {
        self.in_mis.values().filter(|&&m| m).count()
    }

    /// Current MIS as a set (for equivalence checks).
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.in_mis
            .iter()
            .filter_map(|(&v, &m)| m.then_some(v))
            .collect()
    }

    /// Inserts edge `{u, v}` (must be valid) and settles; returns flips.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> usize {
        self.adj.get_mut(&u).expect("live").insert(v);
        self.adj.get_mut(&v).expect("live").insert(u);
        let (lo, hi) = if self.before(u, v) { (u, v) } else { (v, u) };
        let mut seeds = Vec::new();
        if self.in_mis[&lo] {
            *self.lower.get_mut(&hi).expect("live") += 1;
            seeds.push(hi);
        }
        self.settle(seeds)
    }

    /// Removes edge `{u, v}` (must exist) and settles; returns flips.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> usize {
        self.adj.get_mut(&u).expect("live").remove(&v);
        self.adj.get_mut(&v).expect("live").remove(&u);
        let (lo, hi) = if self.before(u, v) { (u, v) } else { (v, u) };
        let mut seeds = Vec::new();
        if self.in_mis[&lo] {
            *self.lower.get_mut(&hi).expect("live") -= 1;
            seeds.push(hi);
        }
        self.settle(seeds)
    }

    /// Inserts a node wired to `neighbors` (must be valid) and settles.
    pub fn insert_node(&mut self, neighbors: &[NodeId]) -> NodeId {
        let v = NodeId(self.next_id);
        self.next_id += 1;
        let key: u64 = self.rng.random();
        self.priorities.insert(v, Priority::new(key, v));
        self.adj.insert(v, neighbors.iter().copied().collect());
        for &u in neighbors {
            self.adj.get_mut(&u).expect("live").insert(v);
        }
        self.in_mis.insert(v, false);
        let count = self.count_lower(v);
        self.lower.insert(v, count);
        self.settle(vec![v]);
        v
    }

    /// Removes node `v` (must exist) and settles; returns flips.
    pub fn remove_node(&mut self, v: NodeId) -> usize {
        let was_in = self.in_mis.remove(&v).expect("live");
        let prio_v = self.priorities.remove(&v).expect("live");
        self.lower.remove(&v);
        let nbrs = self.adj.remove(&v).expect("live");
        let mut seeds = Vec::new();
        for &u in &nbrs {
            self.adj.get_mut(&u).expect("live").remove(&v);
            if self.priorities[&u] > prio_v {
                if was_in {
                    *self.lower.get_mut(&u).expect("live") -= 1;
                }
                seeds.push(u);
            }
        }
        self.settle(seeds)
    }

    fn settle(&mut self, seeds: Vec<NodeId>) -> usize {
        let mut heap: BinaryHeap<Reverse<(Priority, NodeId)>> = seeds
            .into_iter()
            .map(|v| Reverse((self.priorities[&v], v)))
            .collect();
        let mut flips = 0usize;
        while let Some(Reverse((prio, v))) = heap.pop() {
            let desired = self.lower[&v] == 0;
            if desired == self.in_mis[&v] {
                continue;
            }
            self.in_mis.insert(v, desired);
            flips += 1;
            let higher: Vec<NodeId> = self.adj[&v]
                .iter()
                .copied()
                .filter(|w| self.priorities[w] > prio)
                .collect();
            for w in higher {
                let c = self.lower.get_mut(&w).expect("live");
                if desired {
                    *c += 1;
                } else {
                    *c -= 1;
                }
                heap.push(Reverse((self.priorities[&w], w)));
            }
        }
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    #[test]
    fn baseline_maintains_a_maximal_independent_set() {
        let (g, ids) = generators::cycle(8);
        let mut engine = BTreeMisEngine::from_graph(&g, 9);
        let check = |e: &BTreeMisEngine| {
            let mis = e.mis();
            for (&v, nbrs) in &e.adj {
                let dominated = nbrs.iter().any(|u| mis.contains(u) && e.before(*u, v));
                assert_eq!(mis.contains(&v), !dominated, "invariant broken at {v}");
            }
        };
        check(&engine);
        engine.remove_edge(ids[0], ids[1]);
        check(&engine);
        engine.insert_edge(ids[0], ids[1]);
        check(&engine);
        engine.insert_edge(ids[0], ids[4]);
        check(&engine);
        engine.remove_edge(ids[0], ids[4]);
        check(&engine);
        let v = engine.insert_node(&[ids[2], ids[3]]);
        check(&engine);
        engine.remove_node(v);
        check(&engine);
        assert_eq!(engine.mis_size(), engine.mis().len());
    }
}
