//! Graph families swept by the experiments.

use dmis_graph::{generators, DynGraph};
use rand::Rng;

/// A named graph family with a single size parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Erdős–Rényi `G(n, 8/n)` — constant expected degree.
    SparseEr,
    /// Erdős–Rényi `G(n, 0.3)` — dense.
    DenseEr,
    /// Barabási–Albert with attachment 3 — heavy-tailed degrees.
    PowerLaw,
    /// Star on n nodes (Section 5, Example 1).
    Star,
    /// √n × √n grid.
    Grid,
    /// Complete bipartite `K_{n/2,n/2}` (the lower-bound gadget).
    Bipartite,
    /// Chung–Lu with exponent 2.5 and mean degree 8 — `√n`-degree hubs at
    /// million-node scale, built in `O(n + m)`.
    ChungLu,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 7] = [
        Family::SparseEr,
        Family::DenseEr,
        Family::PowerLaw,
        Family::Star,
        Family::Grid,
        Family::Bipartite,
        Family::ChungLu,
    ];

    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Family::SparseEr => "ER(n,8/n)",
            Family::DenseEr => "ER(n,0.3)",
            Family::PowerLaw => "BA(n,3)",
            Family::Star => "star(n)",
            Family::Grid => "grid",
            Family::Bipartite => "K(n/2,n/2)",
            Family::ChungLu => "CL(n,8,2.5)",
        }
    }

    /// Builds an instance with roughly `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    #[must_use]
    pub fn build<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> DynGraph {
        assert!(n >= 4, "families need at least 4 nodes");
        match self {
            Family::SparseEr => {
                let p = (8.0 / n as f64).min(1.0);
                generators::erdos_renyi(n, p, rng).0
            }
            Family::DenseEr => generators::erdos_renyi(n, 0.3, rng).0,
            Family::PowerLaw => generators::barabasi_albert(n, 3, rng).0,
            Family::Star => generators::star(n).0,
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid(side, side).0
            }
            Family::Bipartite => generators::complete_bipartite(n / 2, n / 2).0,
            Family::ChungLu => generators::chung_lu(n, 8.0, 2.5, rng).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_families_build() {
        let mut rng = StdRng::seed_from_u64(0);
        for f in Family::ALL {
            let g = f.build(30, &mut rng);
            assert!(g.node_count() >= 15, "{}: too few nodes", f.label());
            g.assert_consistent();
            assert!(!f.label().is_empty());
        }
    }
}
