//! # dmis-bench
//!
//! The experiment harness of the reproduction: every quantitative claim of
//! *Optimal Dynamic Distributed MIS* maps to one experiment (E1–E11, see
//! DESIGN.md), each a function returning a printable report. The
//! `experiments` binary runs them and prints the paper-expected vs. measured
//! tables recorded in EXPERIMENTS.md; the Criterion benches measure
//! wall-clock costs of the same code paths.
//!
//! | Exp | Claim |
//! |-----|-------|
//! | E1  | Theorem 1: `E[|S|] ≤ 1` for every change type |
//! | E2  | Corollary 6: 1 adjustment & 1 round expected (sync + async) |
//! | E3  | Theorem 7: broadcast complexity of Algorithm 2 per change type |
//! | E4  | §1.1 lower bounds: deterministic n-adjustment cascade, Markov tightness |
//! | E5  | 3-approximate correlation clustering |
//! | E6  | Definition 14: history independence (TV distance) |
//! | E7  | §5 Example 1: star MIS expected size |
//! | E8  | §5 Example 2: 3-path matching expected size 5n/12 |
//! | E9  | §5 Example 3: coloring quality and O(Δ) recoloring cost |
//! | E10 | Separation from the static recompute baseline (Luby) |
//! | E11 | Direct template vs Algorithm 2 broadcast ablation |

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

pub mod baseline_btree;
pub mod experiments;
pub mod families;
pub mod stats;
pub mod table;
