//! Small statistics toolkit for Monte-Carlo experiment reports.

use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval for the mean.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample of f64 observations.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let ci95 = 1.96 * std_dev / (n as f64).sqrt();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }

    /// Summarizes a sample of counts.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    #[must_use]
    pub fn of_counts(samples: &[usize]) -> Self {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of(&as_f64)
    }

    /// `mean ± ci95` rendered compactly.
    #[must_use]
    pub fn mean_ci(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.ci95)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (σ {:.3}, range [{}, {}], n={})",
            self.mean_ci(),
            self.std_dev,
            self.min,
            self.max,
            self.n
        )
    }
}

/// Total-variation distance between two empirical distributions given as
/// (outcome → count) maps over a common outcome space.
#[must_use]
pub fn total_variation<K: Ord>(
    a: &std::collections::BTreeMap<K, usize>,
    b: &std::collections::BTreeMap<K, usize>,
) -> f64 {
    let na: f64 = a.values().map(|&c| c as f64).sum();
    let nb: f64 = b.values().map(|&c| c as f64).sum();
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 0.0 } else { 1.0 };
    }
    let keys: std::collections::BTreeSet<&K> = a.keys().chain(b.keys()).collect();
    let mut tv = 0.0;
    for k in keys {
        let pa = a.get(k).map_or(0.0, |&c| c as f64) / na;
        let pb = b.get(k).map_or(0.0, |&c| c as f64) / nb;
        tv += (pa - pb).abs();
    }
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts(&[0, 1, 2]);
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn tv_identical_is_zero() {
        let a: BTreeMap<u32, usize> = [(1, 5), (2, 5)].into_iter().collect();
        assert_eq!(total_variation(&a, &a), 0.0);
    }

    #[test]
    fn tv_disjoint_is_one() {
        let a: BTreeMap<u32, usize> = [(1, 10)].into_iter().collect();
        let b: BTreeMap<u32, usize> = [(2, 10)].into_iter().collect();
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_scales_with_counts_not_mass() {
        let a: BTreeMap<u32, usize> = [(1, 100), (2, 100)].into_iter().collect();
        let b: BTreeMap<u32, usize> = [(1, 1), (2, 1)].into_iter().collect();
        assert_eq!(total_variation(&a, &b), 0.0, "same distribution");
    }

    #[test]
    fn tv_half_overlap() {
        let a: BTreeMap<u32, usize> = [(1, 10)].into_iter().collect();
        let b: BTreeMap<u32, usize> = [(1, 5), (2, 5)].into_iter().collect();
        assert!((total_variation(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::of(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains('±'));
    }
}
