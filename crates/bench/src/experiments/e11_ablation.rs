//! E11 — ablation: direct template vs Algorithm 2.
//!
//! The direct implementation flips a node every time its invariant is
//! violated, so a node can change state (and broadcast) several times per
//! recovery — the paper notes the naive broadcast count "may be as large
//! as |S|²", which is why Algorithm 2 adds the `C`/`R` states to commit
//! each node once (Lemma 8), at the price of a constant-factor more
//! rounds. We measure both protocols on:
//!
//! - the paper's `u₂` gadget (a node provably flipping twice);
//! - the ordered-path cascade (the max-|S| single change, where each node
//!   flips exactly once and the direct protocol is leaner);
//! - random sparse graphs (the expected case where both are O(1)).

use dmis_core::template::u2_gadget;
use dmis_graph::{generators, DistributedChange};
use dmis_protocol::{ConstantBroadcast, TemplateDirect};
use dmis_sim::{ChangeOutcome, Protocol, SyncNetwork};

use super::common::trial_rng;
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

fn run_both<F>(mut build: F) -> (ChangeOutcome, ChangeOutcome)
where
    F: FnMut() -> (
        dmis_graph::DynGraph,
        dmis_core::PriorityMap,
        DistributedChange,
    ),
{
    fn one<P: Protocol>(
        proto: P,
        g: dmis_graph::DynGraph,
        pm: dmis_core::PriorityMap,
        change: &DistributedChange,
    ) -> ChangeOutcome {
        let mut net = SyncNetwork::bootstrap_with_priorities(proto, g, pm, 0);
        let outcome = net.apply_change(change).expect("valid change");
        net.assert_greedy_invariant();
        outcome
    }
    let (g, pm, change) = build();
    let direct = one(TemplateDirect, g.clone(), pm.clone(), &change);
    let (g, pm, change) = build();
    let alg2 = one(ConstantBroadcast, g, pm, &change);
    (direct, alg2)
}

/// Runs experiment E11.
#[must_use]
pub fn run(quick: bool) -> Report {
    let mut table = Table::new(vec![
        "workload",
        "direct bcasts",
        "alg2 bcasts",
        "direct rounds",
        "alg2 rounds",
    ]);

    // (a) The u₂ gadget: |S| = 5 but the direct protocol pays 6 state
    // broadcasts (u₂ twice).
    let (direct, alg2) = run_both(|| {
        let (g, pm, [v_star, _, _, _, _, anchor]) = u2_gadget();
        (g, pm, DistributedChange::InsertEdge(anchor, v_star))
    });
    table.row(vec![
        "u2 gadget (S=5)".into(),
        direct.metrics.broadcasts.to_string(),
        alg2.metrics.broadcasts.to_string(),
        direct.metrics.rounds.to_string(),
        alg2.metrics.rounds.to_string(),
    ]);

    // (b) Ordered-path cascade: every node flips exactly once.
    for &n in &[16usize, 64] {
        let (direct, alg2) = run_both(|| {
            let (g, ids) = generators::path(n);
            let pm = dmis_core::PriorityMap::from_order(&ids);
            (
                g,
                pm,
                DistributedChange::AbruptDeleteEdge(dmis_graph::NodeId(0), dmis_graph::NodeId(1)),
            )
        });
        table.row(vec![
            format!("ordered path n={n} (S=n-1)"),
            direct.metrics.broadcasts.to_string(),
            alg2.metrics.broadcasts.to_string(),
            direct.metrics.rounds.to_string(),
            alg2.metrics.rounds.to_string(),
        ]);
    }

    // (c) Random sparse graphs, expected case.
    let trials = if quick { 80 } else { 400 };
    let n = if quick { 40 } else { 100 };
    let (mut db, mut ab, mut dr, mut ar) = (vec![], vec![], vec![], vec![]);
    for trial in 0..trials {
        let mut rng = trial_rng(11_000, trial as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        let Some((u, v)) = generators::random_edge(&g, &mut rng) else {
            continue;
        };
        let mut pm_rng = trial_rng(11_500, trial as u64);
        let pm = super::common::random_priorities(&g, &mut pm_rng);
        let change = DistributedChange::AbruptDeleteEdge(u, v);
        let mut net =
            SyncNetwork::bootstrap_with_priorities(TemplateDirect, g.clone(), pm.clone(), 0);
        let direct = net.apply_change(&change).expect("valid");
        let mut net = SyncNetwork::bootstrap_with_priorities(ConstantBroadcast, g, pm, 0);
        let alg2 = net.apply_change(&change).expect("valid");
        db.push(direct.metrics.broadcasts);
        ab.push(alg2.metrics.broadcasts);
        dr.push(direct.metrics.rounds);
        ar.push(alg2.metrics.rounds);
    }
    table.row(vec![
        format!("ER({n}, 8/n) edge-delete (mean of {trials})"),
        format!("{:.2}", Summary::of_counts(&db).mean),
        format!("{:.2}", Summary::of_counts(&ab).mean),
        format!("{:.2}", Summary::of_counts(&dr).mean),
        format!("{:.2}", Summary::of_counts(&ar).mean),
    ]);

    let body = format!(
        "{table}\n\
         Reading: on the u₂ gadget the direct template re-broadcasts \
         (6 state changes for |S| = 5; adversarial nestings push this \
         toward the |S|² worst case the paper cites), while Algorithm 2 \
         commits each influenced node exactly once (Lemma 8) at ≤ 3 \
         broadcasts per node plus the fixed handshake — its rounds are a \
         constant factor higher because of the two-round C-guard. In the \
         expected case (bottom row) both are O(1); Algorithm 2's advantage \
         is the *guarantee*, bounding broadcasts by O(|S|) instead of \
         O(|S|²).\n"
    );
    Report {
        id: "E11",
        title: "Ablation: direct template vs Algorithm 2",
        claim: "A naive implementation of the template may broadcast up to \
                |S|² times because nodes flip repeatedly; Algorithm 2's C/R \
                states cap each node at one commit (3 broadcasts), trading a \
                constant factor in rounds.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_quick_shows_double_flip_overhead() {
        let report = run(true);
        let row = report
            .body
            .lines()
            .find(|l| l.contains("u2 gadget"))
            .expect("gadget row");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        let direct: usize = cells[2].parse().unwrap();
        // 2 Info + 6 state changes: u₂ flips twice.
        assert_eq!(direct, 8);
        let alg2_rounds: usize = cells[5].parse().unwrap();
        let direct_rounds: usize = cells[4].parse().unwrap();
        assert!(
            alg2_rounds >= direct_rounds,
            "alg2 trades rounds for bcasts"
        );
    }
}
