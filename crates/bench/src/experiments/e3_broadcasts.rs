//! E3 — Theorem 7: broadcast complexity of Algorithm 2 per change type,
//! plus the two degree sweeps (insertion `O(d(v*))`, abrupt deletion
//! `O(min{log n, d(v*)})`).

use dmis_graph::{generators, DistributedChange, NodeId};
use dmis_protocol::ConstantBroadcast;
use dmis_sim::SyncNetwork;
use rand::Rng;

use super::common::trial_rng;
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E3.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 48 } else { 128 };
    let trials = if quick { 60 } else { 250 };

    // Part 1: per-change-type costs on sparse ER.
    let mut per_type = Table::new(vec!["change", "broadcasts", "rounds", "adjustments"]);
    let kinds: [&str; 7] = [
        "edge-insertion",
        "graceful-edge-deletion",
        "abrupt-edge-deletion",
        "node-insertion(deg 3)",
        "node-unmuting(deg 3)",
        "graceful-node-deletion",
        "abrupt-node-deletion",
    ];
    for (k, label) in kinds.iter().enumerate() {
        let mut broadcasts = Vec::new();
        let mut rounds = Vec::new();
        let mut adjustments = Vec::new();
        for trial in 0..trials {
            let mut rng = trial_rng(3000 + k as u64, trial as u64);
            let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, trial as u64);
            let logical = net.logical_graph();
            let change = match k {
                0 => generators::random_non_edge(&logical, &mut rng)
                    .map(|(u, v)| DistributedChange::InsertEdge(u, v)),
                1 => generators::random_edge(&logical, &mut rng)
                    .map(|(u, v)| DistributedChange::GracefulDeleteEdge(u, v)),
                2 => generators::random_edge(&logical, &mut rng)
                    .map(|(u, v)| DistributedChange::AbruptDeleteEdge(u, v)),
                3 | 4 => {
                    let mut pool: Vec<NodeId> = logical.nodes().collect();
                    let mut edges = Vec::new();
                    for _ in 0..3.min(pool.len()) {
                        let i = rng.random_range(0..pool.len());
                        edges.push(pool.swap_remove(i));
                    }
                    let id = net.graph().peek_next_id();
                    Some(if k == 3 {
                        DistributedChange::InsertNode { id, edges }
                    } else {
                        DistributedChange::UnmuteNode { id, edges }
                    })
                }
                5 => generators::random_node(&logical, &mut rng)
                    .map(DistributedChange::GracefulDeleteNode),
                _ => generators::random_node(&logical, &mut rng)
                    .map(DistributedChange::AbruptDeleteNode),
            };
            let Some(change) = change else { continue };
            let outcome = net.apply_change(&change).expect("valid change");
            net.assert_greedy_invariant();
            broadcasts.push(outcome.metrics.broadcasts);
            rounds.push(outcome.metrics.rounds);
            adjustments.push(outcome.adjustments());
        }
        per_type.row(vec![
            (*label).to_string(),
            Summary::of_counts(&broadcasts).mean_ci(),
            Summary::of_counts(&rounds).mean_ci(),
            Summary::of_counts(&adjustments).mean_ci(),
        ]);
    }

    // Part 2: node-insertion broadcast cost vs degree d(v*): expect ≈ d + O(1).
    let mut ins_sweep = Table::new(vec!["d(v*)", "broadcasts (mean ± CI)", "d + 1"]);
    for &d in &[1usize, 2, 4, 8, 16, 32] {
        let mut broadcasts = Vec::new();
        for trial in 0..trials / 2 {
            let mut rng = trial_rng(3100 + d as u64, trial as u64);
            let (g, _) = generators::erdos_renyi(n.max(d + 4), 8.0 / n as f64, &mut rng);
            let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, trial as u64);
            let mut pool: Vec<NodeId> = net.logical_graph().nodes().collect();
            let mut edges = Vec::new();
            for _ in 0..d {
                let i = rng.random_range(0..pool.len());
                edges.push(pool.swap_remove(i));
            }
            let change = DistributedChange::InsertNode {
                id: net.graph().peek_next_id(),
                edges,
            };
            let outcome = net.apply_change(&change).expect("valid change");
            broadcasts.push(outcome.metrics.broadcasts);
        }
        ins_sweep.row(vec![
            d.to_string(),
            Summary::of_counts(&broadcasts).mean_ci(),
            (d + 1).to_string(),
        ]);
    }

    // Part 3: abrupt node deletion vs victim degree: expect bounded by
    // O(min{log n, d}) — flat in d once d exceeds log n.
    let mut del_sweep = Table::new(vec!["d(v*)", "broadcasts (mean ± CI)", "min{log2 n, d}"]);
    for &d in &[1usize, 2, 4, 8, 16, 32] {
        let mut broadcasts = Vec::new();
        for trial in 0..trials / 2 {
            let mut rng = trial_rng(3200 + d as u64, trial as u64);
            // A victim of degree exactly d: plant it into a sparse ER graph.
            let (mut g, ids) = generators::erdos_renyi(n.max(d + 4), 8.0 / n as f64, &mut rng);
            let mut pool = ids.clone();
            let mut nbrs = Vec::new();
            for _ in 0..d {
                let i = rng.random_range(0..pool.len());
                nbrs.push(pool.swap_remove(i));
            }
            let victim = g.add_node_with_edges(nbrs).expect("valid neighbors");
            let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, trial as u64);
            let outcome = net
                .apply_change(&DistributedChange::AbruptDeleteNode(victim))
                .expect("valid change");
            net.assert_greedy_invariant();
            broadcasts.push(outcome.metrics.broadcasts);
        }
        let logn = (n as f64).log2().ceil() as usize;
        del_sweep.row(vec![
            d.to_string(),
            Summary::of_counts(&broadcasts).mean_ci(),
            logn.min(d).to_string(),
        ]);
    }

    let body = format!(
        "Algorithm 2 on ER(n={n}, p=8/n), {trials} trials per row.\n\n\
         Per-change-type cost:\n\n{per_type}\n\
         Node-insertion handshake vs degree (expect ≈ d + O(1), the §4.1 \
         welcome replies):\n\n{ins_sweep}\n\
         Abrupt node deletion vs victim degree (expect O(min{{log n, d}}) — \
         growth must flatten; the multi-source recovery only re-enters C \
         O(log)-many times, Lemma 12):\n\n{del_sweep}\n"
    );
    Report {
        id: "E3",
        title: "Theorem 7: broadcast complexity of Algorithm 2",
        claim: "O(1) expected broadcasts for edge changes, graceful node \
                deletion and unmuting; O(d(v*)) for node insertion; \
                O(min{log n, d(v*)}) for abrupt node deletion. O(1) rounds \
                and 1 adjustment throughout.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_quick_runs() {
        let report = run(true);
        assert_eq!(report.id, "E3");
        assert!(report.body.contains("abrupt-node-deletion"));
        assert!(report.body.contains("min{log2 n, d}"));
    }
}
