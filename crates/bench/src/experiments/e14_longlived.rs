//! E14 (extension) — long-lived executions: amortized behavior over
//! thousands of changes.
//!
//! The paper's guarantees are per-change, "not only amortized over all
//! changes" — strictly stronger than what sequential dynamic algorithms
//! usually offer. A long-lived run lets us confirm there is no hidden
//! drift: amortized adjustments stay ≈ the per-change expectation, work
//! counters stay flat, and the same holds on a geometric (wireless-style)
//! topology, not just ER.

use dmis_core::DynamicMis;
use dmis_graph::generators;
use dmis_graph::stream::{self, ChurnConfig};

use super::common::trial_rng;
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E14.
#[must_use]
pub fn run(quick: bool) -> Report {
    let changes = if quick { 2000 } else { 10000 };
    let mut table = Table::new(vec![
        "graph",
        "changes",
        "adjust/chg",
        "heap pops/chg",
        "counter upd/chg",
        "max single-step adjust",
    ]);
    let workloads: [(&str, u8); 3] = [
        ("ER(500, 8/n)", 0),
        ("geometric(500, r=0.07)", 1),
        ("BA(500, 3)", 2),
    ];
    for (label, kind) in workloads {
        let mut rng = trial_rng(14_000, u64::from(kind));
        let n = if quick { 200 } else { 500 };
        let g = match kind {
            0 => generators::erdos_renyi(n, 8.0 / n as f64, &mut rng).0,
            1 => generators::random_geometric(n, 0.07, &mut rng).0,
            _ => generators::barabasi_albert(n, 3, &mut rng).0,
        };
        let mut engine = dmis_core::Engine::builder()
            .graph(g)
            .seed(u64::from(kind) + 77)
            .build_unsharded();
        let mut adjustments = Vec::with_capacity(changes);
        let mut pops = Vec::with_capacity(changes);
        let mut counters = Vec::with_capacity(changes);
        let mut applied = 0usize;
        for _ in 0..changes {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let receipt = engine.apply(&change).expect("valid change");
            adjustments.push(receipt.adjustments());
            pops.push(receipt.heap_pops());
            counters.push(receipt.counter_updates());
            applied += 1;
        }
        engine.assert_internally_consistent();
        let adj = Summary::of_counts(&adjustments);
        table.row(vec![
            label.to_string(),
            applied.to_string(),
            adj.mean_ci(),
            format!("{:.2}", Summary::of_counts(&pops).mean),
            format!("{:.2}", Summary::of_counts(&counters).mean),
            format!("{}", adj.max as usize),
        ]);
    }
    let body = format!(
        "Mixed churn (40% edge-ins, 40% edge-del, 10% node-ins, 10% \
         node-del) driven to {changes} changes per workload; internal \
         consistency re-verified against a from-scratch greedy at the \
         end.\n\n{table}\n\
         Reading: amortized adjustments sit well below 1 per change over \
         thousands of changes on three different topology classes, and the \
         sequential work counters (heap settlements, neighbor-counter \
         updates — the O(Δ·|S|) term of Section 6) stay flat: no drift, no \
         amortization tricks, matching the paper's per-change guarantee.\n"
    );
    Report {
        id: "E14",
        title: "Extension: long-lived churn, amortized behavior",
        claim: "The per-change guarantee (E[adjustments] ≤ 1) holds for every \
                change, hence also amortized over arbitrarily long change \
                sequences, with no drift in the maintained structures.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quick_amortized_adjustments_small() {
        let report = run(true);
        for line in report.body.lines().filter(|l| l.starts_with("| ER")) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            let mean: f64 = cells[3].split_whitespace().next().unwrap().parse().unwrap();
            assert!(mean < 1.5, "amortized adjustments {mean} too high");
        }
    }
}
