//! E8 — Section 5, Example 2: maximal matching of disjoint 3-edge paths.
//!
//! Simulating the MIS algorithm on the line graph, each 3-path
//! independently gets a matching of size 2 with probability 2/3 and size 1
//! with probability 1/3, so the expected matching size is `5n/12` for
//! `n = 4k` nodes — versus the worst-case maximal matching of `n/4` (all
//! middle edges).

use dmis_derived::DynamicMatching;
use dmis_graph::generators;

use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E8.
#[must_use]
pub fn run(quick: bool) -> Report {
    let ks: &[usize] = if quick { &[3, 12] } else { &[3, 12, 48] };
    let trials = if quick { 300 } else { 1200 };
    let mut table = Table::new(vec![
        "k (paths)",
        "n",
        "measured mean size",
        "5n/12",
        "worst case n/4",
    ]);
    for &k in ks {
        let n = 4 * k;
        let mut sizes = Vec::with_capacity(trials);
        for trial in 0..trials {
            let (g, _) = generators::disjoint_three_paths(k);
            let dm = DynamicMatching::new(g, 0xE8_0000 + trial as u64);
            sizes.push(dm.matching().len());
        }
        table.row(vec![
            k.to_string(),
            n.to_string(),
            Summary::of_counts(&sizes).mean_ci(),
            format!("{:.3}", 5.0 * n as f64 / 12.0),
            format!("{}", n / 4),
        ]);
    }
    let body = format!(
        "Random-greedy maximal matching (MIS on the line graph) of k \
         disjoint 3-edge paths; {trials} seeds per k.\n\n{table}\n\
         Expected: measured mean ≈ 5n/12 (per path: 2 with prob 2/3, 1 \
         with prob 1/3), strictly better than the worst-case maximal \
         matching n/4 an adversary could force on a history-dependent \
         algorithm.\n"
    );
    Report {
        id: "E8",
        title: "3-path matching: expected size 5n/12",
        claim: "The history-independent maximal matching on n/4 disjoint \
                3-paths has expected size 5n/12, versus worst case n/4.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_quick_matches_formula() {
        let report = run(true);
        let row = report
            .body
            .lines()
            .find(|l| l.starts_with("| 12 "))
            .expect("k=12 row");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        let measured: f64 = cells[3].split_whitespace().next().unwrap().parse().unwrap();
        let expected = 5.0 * 48.0 / 12.0; // 20
        assert!(
            (measured - expected).abs() < 1.0,
            "measured {measured}, formula {expected}"
        );
    }
}
