//! E9 — Section 5, Example 3: random greedy coloring.
//!
//! (a) On the complete bipartite graph minus a perfect matching, random
//! greedy produces an optimal 2-coloring with probability `1 − 1/n`, so
//! the expected palette is `2 + o(1)` — while a worst-case first-fit can
//! be driven to Θ(Δ) colors.
//!
//! (b) Maintaining the greedy coloring dynamically costs up to `O(Δ)`
//! recolorings per change (the paper's 2Δ-adjustments discussion and open
//! question); we measure the per-change recoloring count next to the MIS
//! adjustment count on the same graphs to exhibit the gap.

use dmis_core::DynamicMis;
use dmis_derived::ColoringEngine;
use dmis_graph::{generators, TopologyChange};

use super::common::{change_of_kind, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E9.
#[must_use]
pub fn run(quick: bool) -> Report {
    let trials = if quick { 200 } else { 1000 };

    // Part (a): palette on K_{k,k} minus a perfect matching.
    let ks: &[usize] = if quick { &[8, 16] } else { &[8, 16, 64] };
    let mut palette = Table::new(vec!["k", "n", "mean palette", "P[palette = 2]", "1 - 1/n"]);
    for &k in ks {
        let n = 2 * k;
        let mut palettes = Vec::with_capacity(trials);
        let mut two = 0usize;
        for trial in 0..trials {
            let (g, _, _) = generators::bipartite_minus_matching(k);
            let ce = ColoringEngine::from_graph(g, 0xE9_0000 + trial as u64);
            let p = ce.palette_size();
            if p == 2 {
                two += 1;
            }
            palettes.push(p);
        }
        palette.row(vec![
            k.to_string(),
            n.to_string(),
            Summary::of_counts(&palettes).mean_ci(),
            format!("{:.3}", two as f64 / trials as f64),
            format!("{:.3}", 1.0 - 1.0 / n as f64),
        ]);
    }

    // Part (b): per-change recoloring cost vs MIS adjustment cost.
    let mut cost = Table::new(vec![
        "graph",
        "Δ (mean)",
        "recolorings / change",
        "MIS adjustments / change",
    ]);
    let classes: [(&str, f64, usize); 2] =
        [("ER(100, 0.05)", 0.05, 100), ("ER(100, 0.15)", 0.15, 100)];
    let change_trials = if quick { 150 } else { 600 };
    for (label, p, n) in classes {
        let mut recolors = Vec::new();
        let mut adjustments = Vec::new();
        let mut deltas = Vec::new();
        for trial in 0..change_trials {
            let mut rng = trial_rng(9100, trial as u64);
            let (g, _) = generators::erdos_renyi(n, p, &mut rng);
            deltas.push(g.max_degree());
            let kind = trial % 4;
            let Some(change) = change_of_kind(&g, kind, &mut rng) else {
                continue;
            };
            let mut ce = ColoringEngine::from_graph(g.clone(), 0xE9_1000 + trial as u64);
            let mut me = dmis_core::Engine::builder()
                .graph(g)
                .seed(0xE9_1000 + trial as u64)
                .build_unsharded();
            // InsertNode pre-assigned ids are valid for both (same graph).
            let r1 = match &change {
                TopologyChange::InsertNode { edges, .. } => {
                    ce.insert_node(edges.iter().copied()).map(|(_, r)| r)
                }
                other => ce.apply(other),
            }
            .expect("valid change");
            let r2 = match &change {
                TopologyChange::InsertNode { edges, .. } => me.insert_node(edges).map(|(_, r)| r),
                other => me.apply(other),
            }
            .expect("valid change");
            recolors.push(r1.adjustments());
            adjustments.push(r2.adjustments());
        }
        cost.row(vec![
            label.to_string(),
            format!("{:.1}", Summary::of_counts(&deltas).mean),
            Summary::of_counts(&recolors).mean_ci(),
            Summary::of_counts(&adjustments).mean_ci(),
        ]);
    }

    let body = format!(
        "(a) Palette of random greedy coloring on K(k,k) minus a perfect \
         matching, {trials} seeds per k:\n\n{palette}\n\
         Expected: P[2-coloring] ≈ 1 − 1/n, so the mean palette is \
         2 + o(1) — a constant factor from optimal in expectation.\n\n\
         (b) Dynamic maintenance cost per random change ({change_trials} \
         trials, mixed change types):\n\n{cost}\n\
         Expected: recolorings grow with Δ (the paper's O(Δ) simulation \
         cost — it is open whether O(1) is achievable), while the MIS \
         engine stays at ≈ 1 adjustment on the same instances.\n"
    );
    Report {
        id: "E9",
        title: "Coloring: near-optimal palette; O(Δ) recoloring cost",
        claim: "Random greedy 2-colors K(n/2,n/2) minus a perfect matching \
                with probability 1 − 1/n; simulating greedy coloring \
                dynamically costs O(Δ) adjustments per change, unlike the \
                O(1) of MIS.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_quick_palette_is_two_ish() {
        let report = run(true);
        let row = report
            .body
            .lines()
            .find(|l| l.starts_with("| 16 "))
            .expect("k=16 row");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        let mean: f64 = cells[3].split_whitespace().next().unwrap().parse().unwrap();
        assert!(mean < 2.5, "mean palette {mean} too large");
    }
}
