//! E2 — Corollary 6: the direct template implementation needs one
//! adjustment and one round in expectation, synchronously and
//! asynchronously.
//!
//! Synchronous: bootstrap a [`dmis_protocol::TemplateDirect`] network with
//! a fresh π per trial, apply one random change per type, record rounds and
//! adjustments. Join handshakes add their fixed 2–3 setup rounds on top of
//! the expected single recovery round; the table separates the change
//! types so this is visible.
//!
//! Asynchronous: the same protocol on the event-driven engine under random
//! link delays; "rounds" is the longest causal message chain.

use std::collections::BTreeMap;

use dmis_core::{static_greedy, MisState};
use dmis_graph::{generators, DistributedChange, NodeId};
use dmis_protocol::{TdNode, TemplateDirect};
use dmis_sim::{AsyncNetwork, LocalEvent, NeighborInfo, Protocol, RandomDelays, SyncNetwork};

use super::common::{random_priorities, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E2.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 40 } else { 100 };
    let trials = if quick { 60 } else { 200 };
    let mut table = Table::new(vec!["model / change", "adjustments", "rounds"]);

    // Synchronous, per change type.
    #[allow(clippy::type_complexity)]
    let sync_kinds: [(
        &str,
        fn(&mut SyncNetwork<TemplateDirect>, &mut rand::rngs::StdRng) -> Option<DistributedChange>,
    ); 4] = [
        ("sync edge-insert", |net, rng| {
            generators::random_non_edge(&net.logical_graph(), rng)
                .map(|(u, v)| DistributedChange::InsertEdge(u, v))
        }),
        ("sync edge-delete", |net, rng| {
            generators::random_edge(&net.logical_graph(), rng)
                .map(|(u, v)| DistributedChange::AbruptDeleteEdge(u, v))
        }),
        ("sync node-insert(deg 3)", |net, rng| {
            let nodes: Vec<NodeId> = net.logical_graph().nodes().collect();
            if nodes.len() < 3 {
                return None;
            }
            let mut pool = nodes;
            let mut edges = Vec::new();
            for _ in 0..3 {
                let i = rand::Rng::random_range(rng, 0..pool.len());
                edges.push(pool.swap_remove(i));
            }
            Some(DistributedChange::InsertNode {
                id: net.graph().peek_next_id(),
                edges,
            })
        }),
        ("sync node-delete(abrupt)", |net, rng| {
            generators::random_node(&net.logical_graph(), rng)
                .map(DistributedChange::AbruptDeleteNode)
        }),
    ];

    for (label, pick) in sync_kinds {
        let mut adjustments = Vec::new();
        let mut rounds = Vec::new();
        for trial in 0..trials {
            let mut rng = trial_rng(2000, trial as u64);
            let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let mut net = SyncNetwork::bootstrap(TemplateDirect, g, trial as u64);
            let Some(change) = pick(&mut net, &mut rng) else {
                continue;
            };
            let outcome = net.apply_change(&change).expect("valid change");
            net.assert_greedy_invariant();
            adjustments.push(outcome.adjustments());
            rounds.push(outcome.metrics.rounds);
        }
        table.row(vec![
            label.to_string(),
            Summary::of_counts(&adjustments).mean_ci(),
            Summary::of_counts(&rounds).mean_ci(),
        ]);
    }

    // Asynchronous edge deletions under random delays.
    let mut adjustments = Vec::new();
    let mut depths = Vec::new();
    for trial in 0..trials {
        let mut rng = trial_rng(2100, trial as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        let pm = random_priorities(&g, &mut rng);
        let Some((u, v)) = generators::random_edge(&g, &mut rng) else {
            continue;
        };
        let mis = static_greedy::greedy_mis(&g, &pm);
        let proto = TemplateDirect;
        let nodes: BTreeMap<NodeId, TdNode> = g
            .nodes()
            .map(|w| {
                let info: Vec<NeighborInfo> = g
                    .neighbors(w)
                    .expect("live node")
                    .map(|x| NeighborInfo {
                        id: x,
                        ell: pm.of(x).key(),
                        state: MisState::from_membership(mis.contains(&x)),
                    })
                    .collect();
                (
                    w,
                    proto.spawn_stable(
                        w,
                        pm.of(w).key(),
                        MisState::from_membership(mis.contains(&w)),
                        &info,
                    ),
                )
            })
            .collect();
        let mut net = AsyncNetwork::new(g.clone(), nodes, RandomDelays::new(trial as u64, 5));
        net.graph_mut().remove_edge(u, v).expect("edge exists");
        for (a, b) in [(u, v), (v, u)] {
            net.inject_event(
                a,
                LocalEvent::EdgeRemoved {
                    peer: b,
                    graceful: false,
                },
            );
        }
        let outcome = net.run();
        let before = mis;
        let after = net.mis();
        adjustments.push(before.symmetric_difference(&after).count());
        depths.push(outcome.causal_depth);
    }
    table.row(vec![
        "async edge-delete (random delays)".to_string(),
        Summary::of_counts(&adjustments).mean_ci(),
        Summary::of_counts(&depths).mean_ci(),
    ]);

    let body = format!(
        "Direct template protocol, ER(n={n}, p=8/n), {trials} trials per row \
         (fresh π each trial).\n\n{table}\n\
         Expected: ≈1 adjustment everywhere; recovery rounds O(1) — pure \
         edge changes stabilize in ~1 round, insertions add their fixed \
         handshake rounds (the §4.1 exchange), and the async causal depth \
         stays constant in expectation.\n"
    );
    Report {
        id: "E2",
        title: "Corollary 6: one adjustment, one round (sync + async)",
        claim: "A direct distributed implementation of the template has, in \
                expectation, a single adjustment and a single round, in both \
                the synchronous and asynchronous models.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_quick_runs_and_adjustments_are_small() {
        let report = run(true);
        assert_eq!(report.id, "E2");
        assert!(report.body.contains("async edge-delete"));
    }
}
