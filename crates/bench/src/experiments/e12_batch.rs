//! E12 (extension) — batched changes: the paper's first open question.
//!
//! "An immediate open question is whether our analysis can be extended to
//! cope with more than a single failure at a time." (Section 6.) We apply
//! `k` simultaneous random changes and measure the influenced set of the
//! combined recovery. Theorem 1 gives a trivial upper bound of `k` by
//! union over sequential applications; the measurement shows the batch
//! recovery is in fact *cheaper* than k sequential recoveries (overlapping
//! cascades merge, and a node flipped twice by consecutive changes is
//! settled once by the batch).
//!
//! A second table adds the **shard-count axis**: the same batches run on
//! the K-shard [`ShardedMisEngine`], measuring how much of the merged
//! recovery crosses shard boundaries. Because the influenced set is small
//! (first table), handoff traffic stays a small multiple of the batch
//! size even though under striping most edges span shards.
//!
//! A fourth table adds the **queue-depth axis** (the ROADMAP's
//! async-batching measurement): the adversary's change stream is fed
//! through [`dmis_sim::IngestRun`] — the coalescing ingestion queue in
//! front of a K = 4 sharded engine — at watermarks Q ∈ {1, 4, 16, 64}.
//! Deeper queues amortize settle passes (fewer flushes, fewer settle
//! epochs = rounds) and cancel opposing churn outright (coalesced
//! changes never cost a single heap pop), at the price of queueing
//! latency: a change waits, on average, ~(Q−1)/2 arrivals before its
//! flush makes it visible. That latency-vs-work trade-off is exactly
//! what the table sweeps, and outputs are watermark-invariant (checked
//! per trial against unbatched application).
//!
//! A third table adds the **thread axis**: the same batches on
//! [`ParallelShardedMisEngine`] (K = 4, spawn threshold 0 so the worker
//! threads really run), metering wall-clock against the two quantities
//! that are *provably invariant* across thread counts — settle epochs
//! (the parallel-time depth, the simulator's rounds) and cross-shard
//! handoffs (broadcasts). At these batch sizes the cascades are small, so
//! the table mostly prices the thread-coordination overhead — the
//! latency/throughput trade-off the ROADMAP's async-batching item needs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dmis_core::{template, DynamicMis, FlushPolicy, ManualClock};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, ShardLayout, TopologyChange};
use dmis_sim::RunConfig;

use super::common::{random_priorities, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Builds a `k`-change batch valid against `g` by drawing random changes
/// against an evolving shadow copy. `None` when the change stream dries
/// up before `k` draws (the trial is skipped).
fn build_batch(
    g: &dmis_graph::DynGraph,
    k: usize,
    rng: &mut rand::rngs::StdRng,
) -> Option<Vec<TopologyChange>> {
    let mut shadow = g.clone();
    let mut batch = Vec::with_capacity(k);
    for _ in 0..k {
        let c = stream::random_change(&shadow, &ChurnConfig::default(), rng)?;
        c.apply(&mut shadow).expect("valid");
        batch.push(c);
    }
    Some(batch)
}

/// A length-`len` flapping stream over a bounded pool of 24 candidate
/// edges of `g` ([`stream::flapping_stream`]): nearby changes regularly
/// hit the same edge — the workload shape where a coalescing queue can
/// cancel work.
fn toggle_pool_stream(
    g: &DynGraph,
    len: usize,
    rng: &mut rand::rngs::StdRng,
) -> Vec<TopologyChange> {
    let pool = stream::random_pair_pool(g, 24, rng);
    stream::flapping_stream(g, &pool, len, false, rng)
}

/// Runs experiment E12.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 60 } else { 150 };
    let trials = if quick { 100 } else { 400 };
    let ks: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let mut table = Table::new(vec![
        "k (batch size)",
        "batch |S| (mean ± CI)",
        "sequential Σ|S| (mean ± CI)",
        "bound k",
    ]);
    for &k in ks {
        let mut batch_sizes = Vec::with_capacity(trials);
        let mut seq_sizes = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = trial_rng(12_000 + k as u64, trial as u64);
            let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let mut pm = random_priorities(&g, &mut rng);
            // Build a valid batch against an evolving shadow.
            let mut shadow = g.clone();
            let mut batch = Vec::with_capacity(k);
            for _ in 0..k {
                let Some(c) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
                else {
                    break;
                };
                if let TopologyChange::InsertNode { id, .. } = &c {
                    pm.assign(*id, &mut rng);
                }
                c.apply(&mut shadow).expect("valid");
                batch.push(c);
            }
            if batch.len() < k {
                continue;
            }
            // Batched recovery.
            let trace = template::simulate_batch(&g, &pm, &batch);
            batch_sizes.push(trace.s_size());
            // Sequential recoveries, summed.
            let mut total = 0usize;
            let mut g_cur = g.clone();
            for c in &batch {
                let mut g_next = g_cur.clone();
                c.apply(&mut g_next).expect("valid");
                total += template::simulate_change(&g_cur, &g_next, &pm, c).s_size();
                g_cur = g_next;
            }
            seq_sizes.push(total);
        }
        table.row(vec![
            k.to_string(),
            Summary::of_counts(&batch_sizes).mean_ci(),
            Summary::of_counts(&seq_sizes).mean_ci(),
            k.to_string(),
        ]);
    }
    // Shard-count axis: the same kind of batches, recovered by the
    // K-shard engine; handoffs audit the cross-shard share of the merged
    // cascade, and every output is checked bit-identical to the
    // unsharded engine.
    let shard_trials = trials / 2;
    let mut shard_table = Table::new(vec![
        "k (batch size)",
        "handoffs K=2 (mean ± CI)",
        "handoffs K=4 (mean ± CI)",
        "shard runs K=4 (mean ± CI)",
        "bit-identical",
    ]);
    for &k in ks {
        let mut handoffs2 = Vec::with_capacity(shard_trials);
        let mut handoffs4 = Vec::with_capacity(shard_trials);
        let mut runs4 = Vec::with_capacity(shard_trials);
        let mut identical = true;
        for trial in 0..shard_trials {
            let mut rng = trial_rng(12_500 + k as u64, trial as u64);
            let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let Some(batch) = build_batch(&g, k, &mut rng) else {
                continue;
            };
            let seed = 7_000 + trial as u64;
            let mut plain = dmis_core::Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .build_unsharded();
            plain.apply_batch(&batch).expect("valid batch");
            for &shards in &[2usize, 4] {
                let mut engine = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(shards))
                    .seed(seed)
                    .build_sharded();
                let receipt = engine.apply_batch(&batch).expect("valid batch");
                identical &= engine.mis() == plain.mis();
                if shards == 2 {
                    handoffs2.push(receipt.cross_shard_handoffs());
                } else {
                    handoffs4.push(receipt.cross_shard_handoffs());
                    runs4.push(receipt.shard_runs());
                }
            }
        }
        shard_table.row(vec![
            k.to_string(),
            Summary::of_counts(&handoffs2).mean_ci(),
            Summary::of_counts(&handoffs4).mean_ci(),
            Summary::of_counts(&runs4).mean_ci(),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }
    // Thread axis: the same batch construction on the parallel engine at
    // K=4. Epochs/handoffs must agree with the sequential engine in every
    // trial (bit-identical receipts); wall-clock is what the threads move.
    let par_trials = (trials / 4).max(10);
    let par_threads: &[usize] = &[1, 2, 4];
    let mut par_table = Table::new(vec![
        "k (batch size)",
        "threads",
        "wall-clock µs/batch (mean ± CI)",
        "epochs = rounds (mean ± CI)",
        "handoffs = broadcasts (mean ± CI)",
        "identical",
    ]);
    for &k in ks {
        for &t in par_threads {
            let mut wall_us = Vec::with_capacity(par_trials);
            let mut epochs = Vec::with_capacity(par_trials);
            let mut handoffs = Vec::with_capacity(par_trials);
            let mut identical = true;
            for trial in 0..par_trials {
                let mut rng = trial_rng(12_800 + k as u64, trial as u64);
                let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
                let Some(batch) = build_batch(&g, k, &mut rng) else {
                    continue;
                };
                let seed = 7_500 + trial as u64;
                let mut sequential = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(4))
                    .seed(seed)
                    .build_sharded();
                let expected = sequential.apply_batch(&batch).expect("valid batch");
                let mut engine = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(4))
                    .threads(t)
                    .seed(seed)
                    .build_parallel();
                engine.set_spawn_threshold(0);
                let start = Instant::now();
                let receipt = engine.apply_batch(&batch).expect("valid batch");
                wall_us.push(start.elapsed().as_secs_f64() * 1e6);
                identical &= receipt == expected && engine.mis_len() == sequential.mis_len();
                epochs.push(receipt.settle_epochs());
                handoffs.push(receipt.cross_shard_handoffs());
            }
            par_table.row(vec![
                k.to_string(),
                t.to_string(),
                Summary::of(&wall_us).mean_ci(),
                Summary::of_counts(&epochs).mean_ci(),
                Summary::of_counts(&handoffs).mean_ci(),
                if identical { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    // Queue-depth axis: the ingestion queue in front of the K=4 sharded
    // engine. The stream is a toggle stream over a bounded edge pool so
    // windows revisit edges (realistic flapping churn) and the coalescer
    // has real cancel opportunities.
    let ingest_trials = (trials / 8).max(8);
    let ingest_stream_len = if quick { 192 } else { 512 };
    let depths: &[usize] = &[1, 4, 16, 64];
    let mut ingest_table = Table::new(vec![
        "queue depth Q",
        "flushes",
        "coalesced %",
        "rounds total",
        "broadcasts total",
        "mean queue delay",
        "wall µs/change (mean ± CI)",
        "invariant outputs",
    ]);
    for &q in depths {
        let mut flushes = Vec::with_capacity(ingest_trials);
        let mut coalesced_pct = Vec::with_capacity(ingest_trials);
        let mut rounds = Vec::with_capacity(ingest_trials);
        let mut broadcasts = Vec::with_capacity(ingest_trials);
        let mut delays = Vec::with_capacity(ingest_trials);
        let mut wall_us = Vec::with_capacity(ingest_trials);
        let mut invariant = true;
        for trial in 0..ingest_trials {
            let mut rng = trial_rng(12_900, trial as u64);
            let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let stream = toggle_pool_stream(&g, ingest_stream_len, &mut rng);
            let seed = 8_000 + trial as u64;
            // Oracle: unbatched application of the same stream.
            let mut oracle = RunConfig::new(g.clone())
                .layout(ShardLayout::striped(4))
                .watermark(1)
                .seed(seed)
                .ingest();
            for c in &stream {
                oracle.push(c).expect("valid stream");
            }
            let mut run = RunConfig::new(g)
                .layout(ShardLayout::striped(4))
                .watermark(q)
                .seed(seed)
                .ingest();
            let start = Instant::now();
            for c in &stream {
                run.push(c).expect("valid stream");
            }
            run.flush().expect("valid tail");
            wall_us.push(start.elapsed().as_secs_f64() * 1e6 / stream.len() as f64);
            invariant &= run.mis() == oracle.mis();
            flushes.push(run.flushes());
            coalesced_pct.push((100 * run.coalesced_changes()) / stream.len());
            rounds.push(run.lifetime_metrics().rounds);
            broadcasts.push(run.lifetime_metrics().broadcasts);
            delays.push(run.mean_queue_delay() as usize);
        }
        ingest_table.row(vec![
            q.to_string(),
            Summary::of_counts(&flushes).mean_ci(),
            Summary::of_counts(&coalesced_pct).mean_ci(),
            Summary::of_counts(&rounds).mean_ci(),
            Summary::of_counts(&broadcasts).mean_ci(),
            Summary::of_counts(&delays).mean_ci(),
            Summary::of(&wall_us).mean_ci(),
            if invariant { "yes".into() } else { "NO".into() },
        ]);
    }
    // Flush-policy axis: the same ingestion deployment under the four
    // FlushPolicy variants, on the two adversarial stream shapes — the
    // coalescing-friendly flapping pool and the anti-coalescing
    // fresh-pair stream (no edge key ever revisited). A manual clock
    // advanced one tick per push makes the deadline and adaptive
    // policies fully deterministic; delay percentiles are in ticks.
    let policy_trials = (trials / 12).max(4);
    let policy_stream_len = if quick { 192 } else { 384 };
    let policies: &[(&str, FlushPolicy)] = &[
        ("depth:4", FlushPolicy::Depth(4)),
        ("depth:64", FlushPolicy::Depth(64)),
        (
            "deadline:8",
            FlushPolicy::Deadline(Duration::from_millis(8)),
        ),
        (
            "either:64:8",
            FlushPolicy::Either(64, Duration::from_millis(8)),
        ),
        ("adaptive", FlushPolicy::adaptive()),
    ];
    let mut policy_table = Table::new(vec![
        "policy",
        "stream",
        "flushes",
        "coalesced %",
        "delay p50 (ticks)",
        "delay p99 (ticks)",
        "invariant outputs",
    ]);
    for (name, policy) in policies {
        for kind in ["flapping", "fresh-pair"] {
            let mut flushes = Vec::with_capacity(policy_trials);
            let mut coalesced_pct = Vec::with_capacity(policy_trials);
            let mut p50s = Vec::with_capacity(policy_trials);
            let mut p99s = Vec::with_capacity(policy_trials);
            let mut invariant = true;
            for trial in 0..policy_trials {
                let mut rng = trial_rng(13_000, trial as u64);
                let (g, ids) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
                let stream = if kind == "flapping" {
                    toggle_pool_stream(&g, policy_stream_len, &mut rng)
                } else {
                    stream::fresh_pair_stream(&g, &ids, policy_stream_len, &mut rng)
                };
                let seed = 8_500 + trial as u64;
                let mut oracle = RunConfig::new(g.clone())
                    .layout(ShardLayout::striped(4))
                    .watermark(1)
                    .seed(seed)
                    .ingest();
                for c in &stream {
                    oracle.push(c).expect("valid stream");
                }
                let clock = ManualClock::new();
                let mut run = RunConfig::new(g)
                    .layout(ShardLayout::striped(4))
                    .policy(policy.clone())
                    .clock(Arc::new(clock.clone()))
                    .seed(seed)
                    .ingest();
                for c in &stream {
                    run.push(c).expect("valid stream");
                    clock.advance(Duration::from_millis(1));
                    run.poll().expect("valid stream");
                }
                run.flush().expect("valid tail");
                invariant &= run.mis() == oracle.mis();
                flushes.push(run.flushes());
                coalesced_pct.push((100 * run.coalesced_changes()) / stream.len());
                p50s.push(run.delay_p50().as_millis() as usize);
                p99s.push(run.delay_p99().as_millis() as usize);
            }
            policy_table.row(vec![
                (*name).to_string(),
                kind.to_string(),
                Summary::of_counts(&flushes).mean_ci(),
                Summary::of_counts(&coalesced_pct).mean_ci(),
                Summary::of_counts(&p50s).mean_ci(),
                Summary::of_counts(&p99s).mean_ci(),
                if invariant { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    let body = format!(
        "k simultaneous random changes on ER(n={n}, 8/n); {trials} fresh \
         orders per k; the same batch is also replayed one change at a \
         time.\n\n{table}\n\
         Reading: the batched influenced set tracks the sequential total \
         (both ≈ linear in k with slope E[|S|] ≤ 1 per change) and never \
         exceeds it — merging cascades only helps. This extends Theorem 1 \
         empirically to multi-failure events; the engine handles them \
         natively via `MisEngine::apply_batch`.\n\n\
         Shard-count axis ({shard_trials} trials per k, same batch \
         construction, `ShardedMisEngine` with striped layouts):\n\n\
         {shard_table}\n\
         Reading: cross-shard traffic grows with the batch size but stays \
         a small multiple of k — the bounded influenced set keeps almost \
         all settle work shard-local, which is what makes range-sharding \
         viable; outputs are bit-identical to the unsharded engine in \
         every trial.\n\n\
         Thread axis ({par_trials} trials per cell, `ParallelShardedMisEngine`, \
         K = 4 striped, spawn threshold 0 — worker threads forced on):\n\n\
         {par_table}\n\
         Reading: epochs and handoffs are invariant across the thread \
         column — receipts are bit-identical to the sequential engine in \
         every trial, so threads move only wall-clock. At these batch \
         sizes the cascades are small and the spawn cost dominates, which \
         is why the production engine keeps a spawn threshold: threads \
         engage on large merged recoveries, never on Theorem-1-sized \
         cascades.\n\n\
         Queue-depth axis ({ingest_trials} trials per Q, \
         {ingest_stream_len}-change flapping streams through \
         `dmis_sim::IngestRun`, K = 4 striped):\n\n{ingest_table}\n\
         Reading: deeper queues flush less often, cancel a growing share \
         of the churn before any settle work (coalesced %), and shrink \
         the total settle rounds and cross-shard broadcasts — while the \
         mean queue delay grows ≈ (Q−1)/2, the latency price of \
         batching. Outputs are invariant across the whole axis (the MIS \
         is history independent, so a coalesced window settles to the \
         same output as unbatched application).\n\n\
         Flush-policy axis ({policy_trials} trials per cell, \
         {policy_stream_len}-change streams, manual clock advanced one \
         tick per push, K = 4 striped):\n\n{policy_table}\n\
         Reading: on the flapping stream a deep fixed watermark buys the \
         most coalescing at the worst tail delay; the deadline policy \
         caps the tail at its bound regardless of depth; and the \
         adaptive smoother converges near the deep-watermark coalesce \
         fraction. On the fresh-pair stream — where *no* change ever \
         coalesces — the smoother shallows toward per-change flushing, \
         beating `depth:64`'s p99 tail by an order of magnitude while \
         fixed policies pay full price. Outputs are invariant across \
         every cell (history independence again).\n"
    );
    Report {
        id: "E12",
        title: "Extension: batched (simultaneous) topology changes",
        claim: "Open question of Section 6: more than a single failure at a \
                time. Expected: influenced set ≤ k for a k-batch (union \
                bound over Theorem 1), with batching no worse than \
                sequential recovery.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_batch_no_worse_than_sequential() {
        let report = run(true);
        for k in ["1", "4", "16"] {
            let row = report
                .body
                .lines()
                .find(|l| l.starts_with(&format!("| {k} ")))
                .unwrap_or_else(|| panic!("row for k={k}"));
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            let batch: f64 = cells[2].split_whitespace().next().unwrap().parse().unwrap();
            let seq: f64 = cells[3].split_whitespace().next().unwrap().parse().unwrap();
            let bound: f64 = k.parse().unwrap();
            assert!(
                batch <= seq + 0.75,
                "batch {batch} should not exceed sequential {seq} (k={k})"
            );
            assert!(
                batch <= bound * 1.6 + 0.8,
                "batch mean {batch} far above union bound {bound}"
            );
        }
    }

    #[test]
    fn e12_quick_queue_depth_axis_trades_latency_for_work() {
        let report = run(true);
        // Parse the queue-depth table rows: Q, flushes, coalesced %, …
        let row = |q: &str| -> Vec<String> {
            report
                .body
                .lines()
                .rfind(|l| l.starts_with(&format!("| {q} ")))
                .unwrap_or_else(|| panic!("row for Q={q}"))
                .split('|')
                .map(|c| c.trim().to_string())
                .collect()
        };
        let first =
            |cell: &str| -> f64 { cell.split_whitespace().next().unwrap().parse().unwrap() };
        let (q1, q64) = (row("1"), row("64"));
        assert_eq!(q1.last().map(String::as_str), Some(""), "table shape");
        // Outputs invariant across the axis.
        assert_eq!(q1[q1.len() - 2], "yes");
        assert_eq!(q64[q64.len() - 2], "yes");
        // Deeper queue: fewer flushes, more coalescing, more delay.
        assert!(first(&q64[2]) < first(&q1[2]), "flushes must drop with Q");
        assert!(
            first(&q64[3]) > first(&q1[3]),
            "coalesced % must grow with Q ({} vs {})",
            q64[3],
            q1[3]
        );
        assert!(first(&q64[6]) > first(&q1[6]), "queue delay grows with Q");
    }

    #[test]
    fn e12_quick_policy_axis_adapts_to_the_stream() {
        let report = run(true);
        let row = |policy: &str, kind: &str| -> Vec<String> {
            report
                .body
                .lines()
                .map(|l| {
                    l.split('|')
                        .map(|c| c.trim().to_string())
                        .collect::<Vec<_>>()
                })
                .find(|cells| cells.len() > 2 && cells[1] == policy && cells[2] == kind)
                .unwrap_or_else(|| panic!("row for {policy} × {kind}"))
        };
        let first =
            |cell: &str| -> f64 { cell.split_whitespace().next().unwrap().parse().unwrap() };
        // Anti-coalescing stream: the smoother shallows, so its p99 tail
        // beats the deep fixed watermark's.
        let adaptive = row("adaptive", "fresh-pair");
        let deep = row("depth:64", "fresh-pair");
        assert!(
            first(&adaptive[6]) < first(&deep[6]),
            "adaptive p99 {} must beat depth:64 p99 {} on fresh pairs",
            adaptive[6],
            deep[6]
        );
        // Flapping stream: the smoother recovers most of the deep
        // watermark's coalescing win.
        let adaptive = row("adaptive", "flapping");
        let deep = row("depth:64", "flapping");
        assert!(
            first(&adaptive[4]) >= 0.5 * first(&deep[4]),
            "adaptive coalesce {} must recover the deep watermark's {}",
            adaptive[4],
            deep[4]
        );
    }

    #[test]
    fn e12_quick_sharded_axis_is_bit_identical() {
        let report = run(true);
        let identical_rows: Vec<&str> = report
            .body
            .lines()
            .filter(|l| l.split('|').count() >= 6 && l.contains("yes"))
            .collect();
        // One bit-identical shard row per batch size, one per batch
        // size × thread count in the thread-axis table, one
        // invariant-output row per queue depth, and one per
        // policy × stream cell in the flush-policy table.
        assert_eq!(
            identical_rows.len(),
            3 + 9 + 4 + 10,
            "every shard/thread/queue/policy row must be bit-identical: {report}"
        );
    }
}
