//! E12 (extension) — batched changes: the paper's first open question.
//!
//! "An immediate open question is whether our analysis can be extended to
//! cope with more than a single failure at a time." (Section 6.) We apply
//! `k` simultaneous random changes and measure the influenced set of the
//! combined recovery. Theorem 1 gives a trivial upper bound of `k` by
//! union over sequential applications; the measurement shows the batch
//! recovery is in fact *cheaper* than k sequential recoveries (overlapping
//! cascades merge, and a node flipped twice by consecutive changes is
//! settled once by the batch).

use dmis_core::template;
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, TopologyChange};

use super::common::{random_priorities, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E12.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 60 } else { 150 };
    let trials = if quick { 100 } else { 400 };
    let ks: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let mut table = Table::new(vec![
        "k (batch size)",
        "batch |S| (mean ± CI)",
        "sequential Σ|S| (mean ± CI)",
        "bound k",
    ]);
    for &k in ks {
        let mut batch_sizes = Vec::with_capacity(trials);
        let mut seq_sizes = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = trial_rng(12_000 + k as u64, trial as u64);
            let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let mut pm = random_priorities(&g, &mut rng);
            // Build a valid batch against an evolving shadow.
            let mut shadow = g.clone();
            let mut batch = Vec::with_capacity(k);
            for _ in 0..k {
                let Some(c) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
                else {
                    break;
                };
                if let TopologyChange::InsertNode { id, .. } = &c {
                    pm.assign(*id, &mut rng);
                }
                c.apply(&mut shadow).expect("valid");
                batch.push(c);
            }
            if batch.len() < k {
                continue;
            }
            // Batched recovery.
            let trace = template::simulate_batch(&g, &pm, &batch);
            batch_sizes.push(trace.s_size());
            // Sequential recoveries, summed.
            let mut total = 0usize;
            let mut g_cur = g.clone();
            for c in &batch {
                let mut g_next = g_cur.clone();
                c.apply(&mut g_next).expect("valid");
                total += template::simulate_change(&g_cur, &g_next, &pm, c).s_size();
                g_cur = g_next;
            }
            seq_sizes.push(total);
        }
        table.row(vec![
            k.to_string(),
            Summary::of_counts(&batch_sizes).mean_ci(),
            Summary::of_counts(&seq_sizes).mean_ci(),
            k.to_string(),
        ]);
    }
    let body = format!(
        "k simultaneous random changes on ER(n={n}, 8/n); {trials} fresh \
         orders per k; the same batch is also replayed one change at a \
         time.\n\n{table}\n\
         Reading: the batched influenced set tracks the sequential total \
         (both ≈ linear in k with slope E[|S|] ≤ 1 per change) and never \
         exceeds it — merging cascades only helps. This extends Theorem 1 \
         empirically to multi-failure events; the engine handles them \
         natively via `MisEngine::apply_batch`.\n"
    );
    Report {
        id: "E12",
        title: "Extension: batched (simultaneous) topology changes",
        claim: "Open question of Section 6: more than a single failure at a \
                time. Expected: influenced set ≤ k for a k-batch (union \
                bound over Theorem 1), with batching no worse than \
                sequential recovery.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_batch_no_worse_than_sequential() {
        let report = run(true);
        for k in ["1", "4", "16"] {
            let row = report
                .body
                .lines()
                .find(|l| l.starts_with(&format!("| {k} ")))
                .unwrap_or_else(|| panic!("row for k={k}"));
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            let batch: f64 = cells[2].split_whitespace().next().unwrap().parse().unwrap();
            let seq: f64 = cells[3].split_whitespace().next().unwrap().parse().unwrap();
            let bound: f64 = k.parse().unwrap();
            assert!(
                batch <= seq + 0.75,
                "batch {batch} should not exceed sequential {seq} (k={k})"
            );
            assert!(
                batch <= bound * 1.6 + 0.8,
                "batch mean {batch} far above union bound {bound}"
            );
        }
    }
}
