//! E4 — the Section 1.1 lower bounds on the complete-bipartite deletion
//! cascade `K_{k,k}`:
//!
//! 1. any **deterministic** algorithm suffers a step with `n` adjustments
//!    (we run the natural greedy-by-identifier algorithm and observe the
//!    forced full flip);
//! 2. the **randomized** algorithm cannot beat expected amortized 1
//!    adjustment (the cascade of k changes forces Ω(k) total adjustments
//!    in expectation), and no high-probability bound beating Markov is
//!    possible: with probability ≈ 1/2 the cascade contains a step with
//!    ≥ k adjustments.

use dmis_core::DynamicMis;
use dmis_graph::stream;
use dmis_protocol::DeterministicGreedy;

use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E4.
#[must_use]
pub fn run(quick: bool) -> Report {
    let ks: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 64] };
    let trials = if quick { 60 } else { 200 };
    let mut table = Table::new(vec![
        "k",
        "det worst step",
        "det total",
        "rand total (mean)",
        "rand worst step (mean)",
        "P[some step ≥ k]",
    ]);
    for &k in ks {
        // Deterministic: one run is enough (no randomness).
        let (g, _, _, changes) = stream::bipartite_cascade(k);
        let mut det = DeterministicGreedy::new(g.clone());
        let mut det_max = 0usize;
        let mut det_total = 0usize;
        for change in &changes {
            let r = det.apply(change).expect("valid cascade");
            det_max = det_max.max(r.adjustments());
            det_total += r.adjustments();
        }

        // Randomized: fresh π per trial.
        let mut totals = Vec::with_capacity(trials);
        let mut maxima = Vec::with_capacity(trials);
        let mut big_step = 0usize;
        for trial in 0..trials {
            let mut engine = dmis_core::Engine::builder()
                .graph(g.clone())
                .seed(0xE4_0000 + trial as u64)
                .build_unsharded();
            let mut total = 0usize;
            let mut max_step = 0usize;
            for change in &changes {
                let r = engine.apply(change).expect("valid cascade");
                total += r.adjustments();
                max_step = max_step.max(r.adjustments());
            }
            if max_step >= k {
                big_step += 1;
            }
            totals.push(total);
            maxima.push(max_step);
        }
        table.row(vec![
            k.to_string(),
            det_max.to_string(),
            det_total.to_string(),
            Summary::of_counts(&totals).mean_ci(),
            Summary::of_counts(&maxima).mean_ci(),
            format!("{:.3}", big_step as f64 / trials as f64),
        ]);
    }
    let body = format!(
        "Deletion cascade on K(k,k): delete the k left nodes one at a time; \
         {trials} random-order trials per k.\n\n{table}\n\
         Expected shape: the deterministic algorithm's worst step equals k \
         (the whole surviving side flips at once). The randomized algorithm \
         pays Θ(k) adjustments in total across the k changes (amortized \
         ≈ 1, the unavoidable minimum), and with constant probability \
         (≈ P[the initial MIS is the left side] = 1/2) some single step \
         flips ≥ k outputs — Markov-tight, so only expectation bounds are \
         possible.\n"
    );
    Report {
        id: "E4",
        title: "Lower bounds: deterministic n-adjustment step; Markov tightness",
        claim: "Any deterministic dynamic MIS algorithm has a change forcing n \
                adjustments; any algorithm needs expected amortized ≥ 1 \
                adjustment; no high-probability bound beating Markov exists.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_quick_deterministic_pays_k() {
        let report = run(true);
        // The k=8 row must show det worst step = 8.
        let row = report
            .body
            .lines()
            .find(|l| l.starts_with("| 8 "))
            .expect("k=8 row");
        assert!(row.contains("| 8 "), "{row}");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        assert_eq!(cells[2], "8", "deterministic worst step must be k");
    }
}
