//! E10 — separation from the static-recompute baseline.
//!
//! The pre-existing approach to dynamic MIS was to rerun a static
//! algorithm (Luby's, O(log n) rounds w.h.p.) after every change. We apply
//! identical random change workloads to Algorithm 2 and to the
//! Luby-recompute baseline and compare all three complexity measures as n
//! grows. The paper's separation: the dynamic algorithm's costs are
//! constant in n, the baseline's grow (rounds Θ(log n), broadcasts Θ(n),
//! adjustments unbounded due to fresh randomness).

use dmis_graph::{generators, stream, TopologyChange};
use dmis_protocol::{luby::DynamicLuby, ConstantBroadcast};
use dmis_sim::SyncNetwork;

use super::common::trial_rng;
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E10.
#[must_use]
pub fn run(quick: bool) -> Report {
    let ns: &[usize] = if quick {
        &[32, 64]
    } else {
        &[64, 128, 256, 512]
    };
    let changes_per_n = if quick { 25 } else { 60 };
    let mut table = Table::new(vec![
        "n",
        "alg2 rounds",
        "luby rounds",
        "alg2 bcasts",
        "luby bcasts",
        "alg2 adjust",
        "luby adjust",
    ]);
    let mut factors = Vec::new();
    for &n in ns {
        let mut rng = trial_rng(10_000, n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g.clone(), n as u64);
        let mut luby = DynamicLuby::new(g, n as u64 + 1);
        let (mut ar, mut lr, mut ab, mut lb, mut aa, mut la) =
            (vec![], vec![], vec![], vec![], vec![], vec![]);
        for _ in 0..changes_per_n {
            // The same oblivious change drives both algorithms.
            let Some(change) = stream::random_change(
                &net.logical_graph(),
                &stream::ChurnConfig::edges_only(),
                &mut rng,
            ) else {
                continue;
            };
            let dchange = match &change {
                TopologyChange::InsertEdge(u, v) => {
                    dmis_graph::DistributedChange::InsertEdge(*u, *v)
                }
                TopologyChange::DeleteEdge(u, v) => {
                    dmis_graph::DistributedChange::AbruptDeleteEdge(*u, *v)
                }
                _ => unreachable!("edges-only churn"),
            };
            let outcome = net.apply_change(&dchange).expect("valid change");
            let l = luby.apply(&change).expect("valid change");
            ar.push(outcome.metrics.rounds);
            lr.push(l.rounds);
            ab.push(outcome.metrics.broadcasts);
            lb.push(l.broadcasts);
            aa.push(outcome.adjustments());
            la.push(l.adjustments());
        }
        let (s_ar, s_lr) = (Summary::of_counts(&ar), Summary::of_counts(&lr));
        let (s_ab, s_lb) = (Summary::of_counts(&ab), Summary::of_counts(&lb));
        let (s_aa, s_la) = (Summary::of_counts(&aa), Summary::of_counts(&la));
        factors.push((n, s_lb.mean / s_ab.mean.max(1e-9)));
        table.row(vec![
            n.to_string(),
            format!("{:.2}", s_ar.mean),
            format!("{:.2}", s_lr.mean),
            format!("{:.1}", s_ab.mean),
            format!("{:.1}", s_lb.mean),
            format!("{:.2}", s_aa.mean),
            format!("{:.2}", s_la.mean),
        ]);
    }
    let factor_text: Vec<String> = factors
        .iter()
        .map(|(n, f)| format!("n={n}: ×{f:.0}"))
        .collect();
    let body = format!(
        "Identical random edge-churn workloads ({changes_per_n} changes per \
         n) on ER(n, 8/n); means per change.\n\n{table}\n\
         Expected separation: Algorithm 2's rounds/broadcasts/adjustments \
         are flat in n; Luby-recompute pays Θ(log n) rounds and Θ(n) \
         broadcasts per change, and its fresh randomness reshuffles many \
         outputs. Broadcast advantage of the dynamic algorithm: {}.\n",
        factor_text.join(", ")
    );
    Report {
        id: "E10",
        title: "Dynamic algorithm vs static recompute (Luby baseline)",
        claim: "Maintaining the MIS dynamically costs O(1) rounds/broadcasts/\
                adjustments per change, versus Θ(log n) rounds and Θ(n) \
                broadcasts for rerunning a static MIS algorithm — the \
                static/dynamic separation motivating the paper.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_shows_broadcast_advantage() {
        let report = run(true);
        assert!(report.body.contains("Broadcast advantage"));
        // At n=64, Luby must broadcast at least 10× more than Algorithm 2.
        let row = report
            .body
            .lines()
            .find(|l| l.starts_with("| 64 "))
            .expect("n=64 row");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        let alg2: f64 = cells[4].parse().unwrap();
        let luby: f64 = cells[5].parse().unwrap();
        assert!(
            luby > 10.0 * alg2.max(0.1),
            "expected a large broadcast separation, got alg2={alg2}, luby={luby}"
        );
    }
}
