//! E7 — Section 5, Example 1: MIS in an adversarially built star.
//!
//! The adversary inserts the center first and then each leaf. The natural
//! history-dependent greedy keeps the center in the MIS forever (size 1,
//! the worst possible); the history-independent random greedy yields the
//! all-leaves MIS with probability `1 − 1/n`, hence expected size
//! `(1/n)·1 + (1 − 1/n)·(n−1)` — within a constant factor of the maximum
//! independent set.

use dmis_core::DynamicMis;
use dmis_graph::stream;
use dmis_graph::DynGraph;
use dmis_protocol::DeterministicGreedy;

use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Closed-form expected MIS size of random greedy on a star of `n` nodes.
#[must_use]
pub fn star_expectation(n: usize) -> f64 {
    let nf = n as f64;
    (1.0 / nf) + (1.0 - 1.0 / nf) * (nf - 1.0)
}

/// Runs experiment E7.
#[must_use]
pub fn run(quick: bool) -> Report {
    let ns: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    let trials = if quick { 200 } else { 1000 };
    let mut table = Table::new(vec![
        "n",
        "random greedy (measured)",
        "closed form",
        "natural greedy",
        "worst case",
    ]);
    for &n in ns {
        let history = stream::adversarial_star_stream(n);
        let mut sizes = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut engine = dmis_core::Engine::builder()
                .seed(0xE7_0000 + trial as u64)
                .build_unsharded();
            for change in &history {
                engine.apply(change).expect("valid history");
            }
            sizes.push(engine.mis_len());
        }
        let mut det = DeterministicGreedy::new(DynGraph::new());
        for change in &history {
            det.apply(change).expect("valid history");
        }
        table.row(vec![
            n.to_string(),
            Summary::of_counts(&sizes).mean_ci(),
            format!("{:.3}", star_expectation(n)),
            det.mis().len().to_string(),
            "1".to_string(),
        ]);
    }
    let body = format!(
        "Star built center-first by the adversary; {trials} seeds per n.\n\n\
         {table}\n\
         Expected: the measured mean matches the closed form \
         (1/n) + (1 − 1/n)(n − 1) ≈ n − 2, i.e. Θ(n) — a constant factor \
         from the maximum independent set — while the natural \
         history-dependent greedy is stuck at the worst case 1.\n"
    );
    Report {
        id: "E7",
        title: "Star example: expected MIS size Θ(n) vs worst case 1",
        claim: "On an adversarially constructed star, random greedy yields an \
                MIS of expected size within a constant factor of maximum; a \
                history-dependent greedy is forced to the worst case (the \
                center alone).",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_values() {
        assert!((star_expectation(2) - 1.0).abs() < 1e-12);
        // n=4: 1/4 + (3/4)*3 = 2.5
        assert!((star_expectation(4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn e7_quick_matches_closed_form() {
        let report = run(true);
        let row = report
            .body
            .lines()
            .find(|l| l.starts_with("| 16 "))
            .expect("n=16 row");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        let measured: f64 = cells[2].split_whitespace().next().unwrap().parse().unwrap();
        let expected = star_expectation(16);
        assert!(
            (measured - expected).abs() < 1.0,
            "measured {measured} too far from closed form {expected}"
        );
        assert_eq!(cells[4], "1", "natural greedy must be stuck at 1");
    }
}
