//! E6 — history independence (Definition 14): the output distribution on a
//! graph `G` depends only on `G`, not on the topology-change history that
//! produced it.
//!
//! We fix a small target graph and reach it through three very different
//! histories; for each we sample the MIS distribution over many fresh
//! random seeds and compare distributions by total-variation distance.
//! The paper's algorithm must show TV ≈ 0 (sampling noise only); the
//! "natural" deterministic greedy is history-*dependent* in general — its
//! fixed outputs under different histories coincide here only because it
//! ignores randomness, so the star example (E7) is where its bias shows.

use std::collections::BTreeMap;

use dmis_core::DynamicMis;
use dmis_graph::{DynGraph, NodeId, TopologyChange};

use super::Report;
use crate::stats::total_variation;
use crate::table::Table;

/// The fixed 6-node target graph: a 5-cycle with a chord and a pendant.
fn target_edges() -> Vec<(u64, u64)> {
    vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3), (2, 5)]
}

/// History A: insert nodes 0..=5, then the edges in canonical order.
fn history_canonical() -> Vec<TopologyChange> {
    let mut h = Vec::new();
    for id in 0..6 {
        h.push(TopologyChange::InsertNode {
            id: NodeId(id),
            edges: vec![],
        });
    }
    for (u, v) in target_edges() {
        h.push(TopologyChange::InsertEdge(NodeId(u), NodeId(v)));
    }
    h
}

/// History B: build a clique on 0..=5 first, then delete the surplus edges.
fn history_dense_first() -> Vec<TopologyChange> {
    let mut h = Vec::new();
    for id in 0..6u64 {
        let edges: Vec<NodeId> = (0..id).map(NodeId).collect();
        h.push(TopologyChange::InsertNode {
            id: NodeId(id),
            edges,
        });
    }
    let target = target_edges();
    for u in 0..6u64 {
        for v in (u + 1)..6 {
            if !target.contains(&(u, v)) && !target.contains(&(v, u)) {
                h.push(TopologyChange::DeleteEdge(NodeId(u), NodeId(v)));
            }
        }
    }
    h
}

/// History C: canonical build plus churn — extra nodes and edges inserted
/// and deleted again (the adversary trying to bias the output).
fn history_churny() -> Vec<TopologyChange> {
    let mut h = history_canonical();
    // A ghost hub connected everywhere, later removed.
    h.push(TopologyChange::InsertNode {
        id: NodeId(6),
        edges: (0..6).map(NodeId).collect(),
    });
    // Extra edge flickering.
    h.push(TopologyChange::DeleteEdge(NodeId(0), NodeId(1)));
    h.push(TopologyChange::InsertEdge(NodeId(0), NodeId(1)));
    h.push(TopologyChange::DeleteNode(NodeId(6)));
    // One more ghost, attached differently.
    h.push(TopologyChange::InsertNode {
        id: NodeId(7),
        edges: vec![NodeId(2), NodeId(3)],
    });
    h.push(TopologyChange::DeleteNode(NodeId(7)));
    h
}

fn sample_distribution(
    history: &[TopologyChange],
    trials: usize,
    tag: u64,
) -> BTreeMap<u64, usize> {
    let mut dist: BTreeMap<u64, usize> = BTreeMap::new();
    for trial in 0..trials {
        let mut engine = dmis_core::Engine::builder()
            .seed(tag.wrapping_mul(0x1234_5678) + trial as u64)
            .build_unsharded();
        for change in history {
            engine.apply(change).expect("valid history");
        }
        // Encode the MIS over nodes 0..6 as a bitmask.
        let mask: u64 = engine.mis().into_iter().map(|v| 1u64 << v.index()).sum();
        *dist.entry(mask).or_insert(0) += 1;
    }
    dist
}

/// Runs experiment E6.
#[must_use]
pub fn run(quick: bool) -> Report {
    let trials = if quick { 2000 } else { 20000 };
    let a = sample_distribution(&history_canonical(), trials, 61);
    let b = sample_distribution(&history_dense_first(), trials, 62);
    let c = sample_distribution(&history_churny(), trials, 63);
    // Sanity: all histories produce the same final graph.
    let mut g = DynGraph::new();
    for change in history_canonical() {
        change.apply(&mut g).expect("valid");
    }

    let mut table = Table::new(vec!["history pair", "TV distance", "outcomes seen"]);
    table.row(vec![
        "canonical vs dense-first".into(),
        format!("{:.4}", total_variation(&a, &b)),
        format!("{} / {}", a.len(), b.len()),
    ]);
    table.row(vec![
        "canonical vs churny".into(),
        format!("{:.4}", total_variation(&a, &c)),
        format!("{} / {}", a.len(), c.len()),
    ]);
    table.row(vec![
        "dense-first vs churny".into(),
        format!("{:.4}", total_variation(&b, &c)),
        format!("{} / {}", b.len(), c.len()),
    ]);

    // Sampling-noise yardstick: two independent samples of the SAME history.
    let a2 = sample_distribution(&history_canonical(), trials, 64);
    let noise = total_variation(&a, &a2);

    let body = format!(
        "Fixed 6-node target graph reached via three histories; MIS \
         distribution sampled over {trials} fresh seeds per history.\n\n\
         {table}\n\
         Same-history resampling noise: {noise:.4}. History independence \
         requires all pairwise TV distances to be at the noise level — the \
         adversary cannot bias the output by choosing the construction \
         path. (Contrast: a history-dependent greedy is deterministic per \
         history and can be steered to any of its feasible outputs; E7 \
         quantifies the damage on the star.)\n"
    );
    Report {
        id: "E6",
        title: "History independence (Definition 14)",
        claim: "The distribution of the output structure depends only on the \
                current graph, not on the history of topology changes that \
                constructed it.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histories_reach_the_same_graph() {
        let mut ga = DynGraph::new();
        for c in history_canonical() {
            c.apply(&mut ga).unwrap();
        }
        let mut gb = DynGraph::new();
        for c in history_dense_first() {
            c.apply(&mut gb).unwrap();
        }
        let mut gc = DynGraph::new();
        for c in history_churny() {
            c.apply(&mut gc).unwrap();
        }
        assert_eq!(ga, gb);
        // History C creates ghost ids, so compare structure over 0..6.
        assert_eq!(ga.node_count(), gc.node_count());
        assert_eq!(ga.edge_count(), gc.edge_count());
        for (u, v) in target_edges() {
            assert!(gc.has_edge(NodeId(u), NodeId(v)));
        }
    }

    #[test]
    fn e6_quick_tv_is_small() {
        let report = run(true);
        for line in report.body.lines().filter(|l| l.contains(" vs ")) {
            let tv: f64 = line
                .split('|')
                .nth(2)
                .and_then(|c| c.trim().parse().ok())
                .expect("tv cell");
            assert!(tv < 0.08, "history dependence detected: {line}");
        }
    }
}
