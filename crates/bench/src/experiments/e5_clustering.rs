//! E5 — random greedy correlation clustering is a 3-approximation
//! (Ailon-Charikar-Newman via the paper's §1.1).
//!
//! On instances small enough for the exact optimum, we measure the ratio
//! `E_π[cost(pivot clustering)] / OPT`. The guarantee is on the
//! *expectation*, so the table reports the ratio of the mean cost to OPT
//! per instance, aggregated over instances.

use dmis_cluster::{exact, from_mis};
use dmis_core::static_greedy;
use dmis_graph::generators;

use super::common::{random_priorities, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E5.
#[must_use]
pub fn run(quick: bool) -> Report {
    let instances = if quick { 6 } else { 20 };
    let trials = if quick { 40 } else { 200 };
    let mut table = Table::new(vec![
        "instance class",
        "mean ratio E[cost]/OPT",
        "worst instance ratio",
    ]);
    let classes: [(&str, f64, usize); 3] = [
        ("ER(8, 0.3)", 0.3, 8),
        ("ER(8, 0.5)", 0.5, 8),
        ("ER(9, 0.7)", 0.7, 9),
    ];
    let mut global_worst: f64 = 0.0;
    for (label, p, n) in classes {
        let mut ratios = Vec::new();
        for inst in 0..instances {
            let mut rng = trial_rng(5000 + inst as u64, (p * 1000.0) as u64);
            let (g, _) = generators::erdos_renyi(n, p, &mut rng);
            let (_, opt) = exact::optimal(&g);
            let mut costs = Vec::with_capacity(trials);
            for trial in 0..trials {
                let mut prio_rng = trial_rng(5500 + inst as u64, trial as u64);
                let pm = random_priorities(&g, &mut prio_rng);
                let mis = static_greedy::greedy_mis_dense(&g, &pm);
                let clustering = from_mis(&g, &pm, &mis);
                costs.push(clustering.cost(&g));
            }
            let mean_cost = Summary::of_counts(&costs).mean;
            let ratio = if opt == 0 {
                // OPT = 0 only for disjoint unions of cliques, where the
                // pivot clustering is also exact.
                if mean_cost == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                mean_cost / opt as f64
            };
            ratios.push(ratio);
        }
        let summary = Summary::of(&ratios);
        global_worst = global_worst.max(summary.max);
        table.row(vec![
            label.to_string(),
            format!("{:.3}", summary.mean),
            format!("{:.3}", summary.max),
        ]);
    }
    let body = format!(
        "{instances} instances per class, {trials} random orders per \
         instance; OPT by exhaustive partition search.\n\n{table}\n\
         Expected: every instance's expected-cost ratio is ≤ 3 (it is \
         usually far smaller); worst observed instance ratio here: \
         {global_worst:.3}.\n"
    );
    Report {
        id: "E5",
        title: "3-approximate correlation clustering",
        claim: "The clustering induced by the random-greedy MIS (each non-MIS \
                node joins its smallest-order MIS neighbor) has expected cost \
                at most 3·OPT on every instance.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_quick_ratios_below_three() {
        let report = run(true);
        // Parse the worst observed ratio from the footer.
        let worst: f64 = report
            .body
            .lines()
            .find(|l| l.contains("worst observed instance ratio"))
            .and_then(|l| {
                l.split(':')
                    .next_back()?
                    .trim()
                    .trim_end_matches('.')
                    .parse()
                    .ok()
            })
            .expect("worst ratio parseable");
        assert!(
            worst <= 3.0,
            "expected-cost ratio {worst} exceeds the 3-approximation bound"
        );
    }
}
