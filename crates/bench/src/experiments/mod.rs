//! The experiment suite E1–E11 (see the crate docs and DESIGN.md for the
//! claim ↔ experiment mapping).
//!
//! Every experiment is a function `run(quick: bool) -> Report`; `quick`
//! shrinks trial counts for CI. The `experiments` binary prints all
//! reports; EXPERIMENTS.md records a full run.

use std::fmt;

mod e10_vs_static;
mod e11_ablation;
mod e12_batch;
mod e13_corruption;
mod e14_longlived;
mod e1_theorem1;
mod e2_corollary6;
mod e3_broadcasts;
mod e4_lower_bounds;
mod e5_clustering;
mod e6_history;
mod e7_star;
mod e8_matching;
mod e9_coloring;

pub use e10_vs_static::run as e10;
pub use e11_ablation::run as e11;
pub use e12_batch::run as e12;
pub use e13_corruption::run as e13;
pub use e14_longlived::run as e14;
pub use e1_theorem1::run as e1;
pub use e2_corollary6::run as e2;
pub use e3_broadcasts::run as e3;
pub use e4_lower_bounds::run as e4;
pub use e5_clustering::run as e5;
pub use e6_history::run as e6;
pub use e7_star::run as e7;
pub use e8_matching::run as e8;
pub use e9_coloring::run as e9;

/// A rendered experiment report: identifier, the paper's claim, and the
/// measured tables.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier ("E1" …).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// What the paper predicts.
    pub claim: &'static str,
    /// Rendered tables and notes.
    pub body: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}", self.id, self.title)?;
        writeln!(f)?;
        writeln!(f, "**Paper claim.** {}", self.claim)?;
        writeln!(f)?;
        write!(f, "{}", self.body)
    }
}

/// Runs every experiment in order.
#[must_use]
pub fn run_all(quick: bool) -> Vec<Report> {
    vec![
        e1(quick),
        e2(quick),
        e3(quick),
        e4(quick),
        e5(quick),
        e6(quick),
        e7(quick),
        e8(quick),
        e9(quick),
        e10(quick),
        e11(quick),
        e12(quick),
        e13(quick),
        e14(quick),
    ]
}

/// Runs one experiment by lowercase id ("e1" … "e11").
#[must_use]
pub fn run_one(id: &str, quick: bool) -> Option<Report> {
    match id {
        "e1" => Some(e1(quick)),
        "e2" => Some(e2(quick)),
        "e3" => Some(e3(quick)),
        "e4" => Some(e4(quick)),
        "e5" => Some(e5(quick)),
        "e6" => Some(e6(quick)),
        "e7" => Some(e7(quick)),
        "e8" => Some(e8(quick)),
        "e9" => Some(e9(quick)),
        "e10" => Some(e10(quick)),
        "e11" => Some(e11(quick)),
        "e12" => Some(e12(quick)),
        "e13" => Some(e13(quick)),
        "e14" => Some(e14(quick)),
        _ => None,
    }
}

pub(crate) mod common {
    //! Helpers shared by the experiment implementations.

    use dmis_core::PriorityMap;
    use dmis_graph::{generators, DynGraph, NodeId, TopologyChange};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fresh uniformly random priorities for every node of `g`.
    pub fn random_priorities(g: &DynGraph, rng: &mut StdRng) -> PriorityMap {
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, rng);
        }
        pm
    }

    /// Draws one random change of the requested kind, or `None` if the
    /// graph admits none.
    pub fn change_of_kind(g: &DynGraph, kind: usize, rng: &mut StdRng) -> Option<TopologyChange> {
        match kind {
            0 => generators::random_non_edge(g, rng).map(|(u, v)| TopologyChange::InsertEdge(u, v)),
            1 => generators::random_edge(g, rng).map(|(u, v)| TopologyChange::DeleteEdge(u, v)),
            2 => {
                let nodes: Vec<NodeId> = g.nodes().collect();
                let deg = rng.random_range(0..=nodes.len().min(5));
                let mut pool = nodes;
                let mut edges = Vec::with_capacity(deg);
                for _ in 0..deg {
                    let i = rng.random_range(0..pool.len());
                    edges.push(pool.swap_remove(i));
                }
                Some(TopologyChange::InsertNode {
                    id: g.peek_next_id(),
                    edges,
                })
            }
            _ => generators::random_node(g, rng).map(TopologyChange::DeleteNode),
        }
    }

    /// A deterministic RNG stream for experiment `tag`, trial `trial`.
    pub fn trial_rng(tag: u64, trial: u64) -> StdRng {
        StdRng::seed_from_u64(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ trial)
    }
}
