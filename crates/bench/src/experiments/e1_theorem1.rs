//! E1 — Theorem 1: `E_π[|S|] ≤ 1` for any single topology change.
//!
//! For each graph family and change type we repeatedly redraw the random
//! order π (the theorem's expectation is over π only; the change is chosen
//! obliviously) and run the faithful template simulation to measure the
//! influenced set `S`. The sample mean of `|S|` must be ≤ 1 up to CI slack.

use dmis_core::template;
use dmis_graph::TopologyChange;

use super::common::{change_of_kind, random_priorities, trial_rng};
use super::Report;
use crate::families::Family;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E1.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 60 } else { 150 };
    let trials = if quick { 120 } else { 400 };
    let mut table = Table::new(vec![
        "family",
        "edge-insert",
        "edge-delete",
        "node-insert",
        "node-delete",
    ]);
    let mut worst_mean: f64 = 0.0;
    for family in Family::ALL {
        let mut cells = vec![family.label().to_string()];
        for kind in 0..4 {
            let mut samples = Vec::with_capacity(trials);
            for trial in 0..trials {
                let mut rng = trial_rng(1000 + kind as u64, trial as u64);
                let g_old = family.build(n, &mut rng);
                let mut pm = random_priorities(&g_old, &mut rng);
                let Some(change) = change_of_kind(&g_old, kind, &mut rng) else {
                    continue;
                };
                if let TopologyChange::InsertNode { id, .. } = &change {
                    pm.assign(*id, &mut rng);
                }
                let mut g_new = g_old.clone();
                change.apply(&mut g_new).expect("valid change");
                let trace = template::simulate_change(&g_old, &g_new, &pm, &change);
                samples.push(trace.s_size());
            }
            let summary = Summary::of_counts(&samples);
            worst_mean = worst_mean.max(summary.mean);
            cells.push(summary.mean_ci());
        }
        table.row(cells);
    }
    let body = format!(
        "Mean |S| (± 95% CI) over {trials} fresh random orders per cell, n ≈ {n}.\n\n{table}\n\
         Worst cell mean: {worst_mean:.3} — the paper's bound is E[|S|] ≤ 1 \
         for every topology change, so all cells must sit at or below 1 \
         (up to CI). Note the bound holds per-change, not just amortized.\n"
    );
    Report {
        id: "E1",
        title: "Theorem 1: expected influenced-set size ≤ 1",
        claim: "For any single topology change, the expected number of nodes \
                that change output in the random-greedy template is at most 1, \
                over the randomness of the order π.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_is_within_bound() {
        let report = run(true);
        assert_eq!(report.id, "E1");
        assert!(report.body.contains("Worst cell mean"));
        // Extract the worst mean and assert the theorem (with CI slack).
        let worst: f64 = report
            .body
            .lines()
            .find(|l| l.starts_with("Worst cell mean"))
            .and_then(|l| l.split(':').nth(1)?.split_whitespace().next()?.parse().ok())
            .expect("worst mean parseable");
        // |S| is heavy-tailed on the bipartite family (a deletion can flip
        // the whole side with probability ~1/n), so the quick-mode sample
        // mean gets generous slack; the full run in EXPERIMENTS.md shows
        // values at or below 1.
        assert!(
            worst <= 2.0,
            "E[|S|] sample mean {worst} violates Theorem 1"
        );
    }
}
