//! E13 (extension) — recovery from state corruption.
//!
//! The paper situates itself next to the self-stabilization literature
//! (super-stabilization: recover fast from a single change AND eventually
//! from any state). The template relaxation *is* a self-stabilizing rule —
//! the greedy configuration is the unique fixed point of the local
//! invariant — so we measure how recovery cost scales when an adversary
//! corrupts the outputs of k nodes without touching the topology.

use dmis_core::template;
use dmis_graph::generators;
use rand::seq::SliceRandom;

use super::common::{random_priorities, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E13.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 60 } else { 200 };
    let trials = if quick { 80 } else { 300 };
    let ks: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut table = Table::new(vec![
        "k corrupted",
        "influenced (mean ± CI)",
        "rounds (mean ± CI)",
        "state changes (mean ± CI)",
    ]);
    for &k in ks {
        let mut influenced = Vec::with_capacity(trials);
        let mut rounds = Vec::with_capacity(trials);
        let mut changes = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = trial_rng(13_000 + k as u64, trial as u64);
            let (g, mut ids) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let pm = random_priorities(&g, &mut rng);
            ids.shuffle(&mut rng);
            let corrupted = &ids[..k.min(ids.len())];
            let trace = template::simulate_corruption(&g, &pm, corrupted);
            influenced.push(trace.s_size());
            rounds.push(trace.rounds);
            changes.push(trace.total_state_changes);
        }
        table.row(vec![
            k.to_string(),
            Summary::of_counts(&influenced).mean_ci(),
            Summary::of_counts(&rounds).mean_ci(),
            Summary::of_counts(&changes).mean_ci(),
        ]);
    }
    let body = format!(
        "Outputs of k random nodes inverted on a stable ER(n={n}, 8/n) \
         system; {trials} trials per k; the template relaxes back to the \
         valid configuration.\n\n{table}\n\
         Reading: recovery is **local** — the influenced set and total work \
         grow linearly in k (roughly the corrupted nodes plus an O(1)-size \
         halo each; note a corrupted node whose lie is locally consistent \
         still has to flip back, so influenced ≈ k + overflow), and the \
         round count stays bounded by the longest priority-increasing \
         cascade, not by n. This is the super-stabilization flavor the \
         related-work section aims at: fast recovery from bounded faults, \
         eventual recovery from any state (the k = n column of the unit \
         tests).\n"
    );
    Report {
        id: "E13",
        title: "Extension: recovery from k corrupted outputs",
        claim: "The template's local rule is self-stabilizing (the greedy MIS \
                is its unique fixed point); recovery cost from k corrupted \
                outputs should scale with k, not with n.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_quick_recovery_is_linear_in_k() {
        let report = run(true);
        let get = |k: &str| -> f64 {
            let row = report
                .body
                .lines()
                .find(|l| l.starts_with(&format!("| {k} ")))
                .unwrap_or_else(|| panic!("row for k={k}"));
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            cells[2].split_whitespace().next().unwrap().parse().unwrap()
        };
        let at1 = get("1");
        let at16 = get("16");
        assert!(at1 <= 4.0, "single corruption should stay tiny, got {at1}");
        assert!(
            at16 <= 16.0 * 4.0,
            "k=16 recovery {at16} should be O(k), not O(n)"
        );
    }
}
