//! E13 (extension) — recovery from state corruption.
//!
//! The paper situates itself next to the self-stabilization literature
//! (super-stabilization: recover fast from a single change AND eventually
//! from any state). The template relaxation *is* a self-stabilizing rule —
//! the greedy configuration is the unique fixed point of the local
//! invariant — so we measure how recovery cost scales when an adversary
//! corrupts the outputs of k nodes without touching the topology.

use dmis_core::{template, Engine};
use dmis_graph::generators;
use rand::seq::SliceRandom;

use super::common::{random_priorities, trial_rng};
use super::Report;
use crate::stats::Summary;
use crate::table::Table;

/// Runs experiment E13.
#[must_use]
pub fn run(quick: bool) -> Report {
    let n = if quick { 60 } else { 200 };
    let trials = if quick { 80 } else { 300 };
    let ks: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut table = Table::new(vec![
        "k corrupted",
        "influenced (mean ± CI)",
        "rounds (mean ± CI)",
        "state changes (mean ± CI)",
    ]);
    for &k in ks {
        let mut influenced = Vec::with_capacity(trials);
        let mut rounds = Vec::with_capacity(trials);
        let mut changes = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = trial_rng(13_000 + k as u64, trial as u64);
            let (g, mut ids) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            let pm = random_priorities(&g, &mut rng);
            ids.shuffle(&mut rng);
            let corrupted = &ids[..k.min(ids.len())];
            let trace = template::simulate_corruption(&g, &pm, corrupted);
            influenced.push(trace.s_size());
            rounds.push(trace.rounds);
            changes.push(trace.total_state_changes);
        }
        table.row(vec![
            k.to_string(),
            Summary::of_counts(&influenced).mean_ci(),
            Summary::of_counts(&rounds).mean_ci(),
            Summary::of_counts(&changes).mean_ci(),
        ]);
    }
    // Engine tier: the same adversary against the *production* engine —
    // flip `in_mis` on k live nodes, then let `verify_and_repair` heal
    // with the template's local rule instead of rebuilding. The settle
    // work (heap pops + counter updates beyond the fixed detection
    // sweep) is what scales with k; `n + 2m` is the floor any
    // from-scratch rebuild pays just to re-derive the counters.
    let engine_trials = trials / 4;
    let mut engine_table = Table::new(vec![
        "k corrupted",
        "repair pops (mean ± CI)",
        "repair counter updates (mean ± CI)",
        "healed (mean ± CI)",
        "rebuild floor (n + 2m)",
    ]);
    let mut rebuild_floor = 0usize;
    for &k in ks {
        let mut pops = Vec::with_capacity(engine_trials);
        let mut counter_updates = Vec::with_capacity(engine_trials);
        let mut healed = Vec::with_capacity(engine_trials);
        for trial in 0..engine_trials {
            let mut rng = trial_rng(13_500 + k as u64, trial as u64);
            let (g, mut ids) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
            rebuild_floor = g.node_count() + 2 * g.edge_count();
            let mut engine = Engine::builder()
                .graph(g)
                .seed(13_600 + trial as u64)
                .build();
            ids.shuffle(&mut rng);
            engine.corrupt_in_mis(&ids[..k.min(ids.len())]);
            let report = engine.verify_and_repair();
            pops.push(report.heap_pops());
            counter_updates.push(report.counter_updates());
            healed.push(report.memberships_violated());
        }
        engine_table.row(vec![
            k.to_string(),
            Summary::of_counts(&pops).mean_ci(),
            Summary::of_counts(&counter_updates).mean_ci(),
            Summary::of_counts(&healed).mean_ci(),
            rebuild_floor.to_string(),
        ]);
    }
    let body = format!(
        "Outputs of k random nodes inverted on a stable ER(n={n}, 8/n) \
         system; {trials} trials per k; the template relaxes back to the \
         valid configuration.\n\n{table}\n\
         Reading: recovery is **local** — the influenced set and total work \
         grow linearly in k (roughly the corrupted nodes plus an O(1)-size \
         halo each; note a corrupted node whose lie is locally consistent \
         still has to flip back, so influenced ≈ k + overflow), and the \
         round count stays bounded by the longest priority-increasing \
         cascade, not by n. This is the super-stabilization flavor the \
         related-work section aims at: fast recovery from bounded faults, \
         eventual recovery from any state (the k = n column of the unit \
         tests).\n\n\
         Engine tier ({engine_trials} trials per k): `verify_and_repair` \
         on a live `MisEngine` with k `in_mis` bits flipped — the \
         undetectable-RAM-corruption case the checksummed durability \
         files cannot catch.\n\n{engine_table}\n\
         Reading: the heal's settle work (pops, counter updates) scales \
         with k while the rebuild floor is fixed at n + 2m — for small k \
         the local rule beats recomputation by orders of magnitude, and \
         the healed engine is bit-identical to one that was never \
         corrupted (the uniqueness of the greedy fixed point, pinned by \
         `crates/core/tests/repair.rs`).\n"
    );
    Report {
        id: "E13",
        title: "Extension: recovery from k corrupted outputs",
        claim: "The template's local rule is self-stabilizing (the greedy MIS \
                is its unique fixed point); recovery cost from k corrupted \
                outputs should scale with k, not with n.",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_quick_recovery_is_linear_in_k() {
        let report = run(true);
        let get = |k: &str| -> f64 {
            let row = report
                .body
                .lines()
                .find(|l| l.starts_with(&format!("| {k} ")))
                .unwrap_or_else(|| panic!("row for k={k}"));
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            cells[2].split_whitespace().next().unwrap().parse().unwrap()
        };
        let at1 = get("1");
        let at16 = get("16");
        assert!(at1 <= 4.0, "single corruption should stay tiny, got {at1}");
        assert!(
            at16 <= 16.0 * 4.0,
            "k=16 recovery {at16} should be O(k), not O(n)"
        );
    }

    #[test]
    fn e13_engine_repair_beats_the_rebuild_floor() {
        let report = run(true);
        let engine = report
            .body
            .split("Engine tier")
            .nth(1)
            .expect("engine-tier table present");
        let cell = |k: &str, col: usize| -> f64 {
            let row = engine
                .lines()
                .find(|l| l.starts_with(&format!("| {k} ")))
                .unwrap_or_else(|| panic!("engine row for k={k}"));
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            cells[col]
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let pops1 = cell("1", 2);
        let pops16 = cell("16", 2);
        let floor = cell("1", 5);
        assert!(
            pops1 <= 30.0,
            "k=1 heal should be neighborhood-local: {pops1}"
        );
        assert!(
            pops16 <= 16.0 * 30.0,
            "k=16 heal {pops16} should be O(k), not O(n)"
        );
        assert!(
            pops16 < floor,
            "healing 16 nodes ({pops16} pops) must undercut the n+2m rebuild \
             floor ({floor})"
        );
    }
}
