//! Minimal aligned-column table printer for experiment reports.

use std::fmt;

/// A simple text table: header row plus data rows, rendered with aligned
/// columns in a `Display` impl.
///
/// # Example
///
/// ```
/// use dmis_bench::table::Table;
///
/// let mut t = Table::new(vec!["family", "mean |S|"]);
/// t.row(vec!["star".into(), "0.98".into()]);
/// let text = t.to_string();
/// assert!(text.contains("family"));
/// assert!(text.contains("star"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                write!(f, "| {}{} ", cell, " ".repeat(pad))?;
            }
            writeln!(f, "|")
        };
        write_row(f, &self.header)?;
        for (i, w) in widths.iter().enumerate() {
            write!(f, "|{}", "-".repeat(w + 2))?;
            if i + 1 == cols {
                writeln!(f, "|")?;
            }
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_style() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "y".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| a  "));
        assert!(lines[1].starts_with("|---"));
        assert!(lines[2].contains("xxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
