//! Wall-clock update costs of the derived structures (matching, coloring,
//! clustering) — the composability story of Section 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dmis_cluster::DynamicClustering;
use dmis_derived::{ColoringEngine, DynamicMatching, NativeMatching};
use dmis_graph::{generators, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("derived_matching");
    for &n in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("edge_toggle", n), &n, |b, _| {
            let mut dm = DynamicMatching::new(g.clone(), 2);
            let mut rng = StdRng::seed_from_u64(5);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(dm.base_graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(dm.remove_edge(u, v).expect("valid"));
                black_box(dm.insert_edge(u, v).expect("valid"));
            });
        });
    }
    group.finish();
}

fn bench_matching_native(c: &mut Criterion) {
    // Same workload as `derived_matching`, but on the native edge-level
    // engine — quantifies the cost of materializing the line graph.
    let mut group = c.benchmark_group("derived_matching_native");
    for &n in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("edge_toggle", n), &n, |b, _| {
            let mut nm = NativeMatching::new(g.clone(), 2);
            let mut rng = StdRng::seed_from_u64(5);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(nm.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(nm.remove_edge(u, v).expect("valid"));
                black_box(nm.insert_edge(u, v).expect("valid"));
            });
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("derived_coloring");
    for &n in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("edge_toggle", n), &n, |b, _| {
            let mut ce = ColoringEngine::from_graph(g.clone(), 2);
            let mut rng = StdRng::seed_from_u64(5);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(ce.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(ce.remove_edge(u, v).expect("valid"));
                black_box(ce.insert_edge(u, v).expect("valid"));
            });
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("derived_clustering");
    for &n in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("edge_toggle", n), &n, |b, _| {
            let mut dc = DynamicClustering::new(g.clone(), 2);
            let mut rng = StdRng::seed_from_u64(5);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(dc.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(dc.apply(&TopologyChange::DeleteEdge(u, v)).expect("valid"));
                black_box(dc.apply(&TopologyChange::InsertEdge(u, v)).expect("valid"));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matching, bench_matching_native, bench_coloring, bench_clustering
}
criterion_main!(benches);
