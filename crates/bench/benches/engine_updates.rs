//! Wall-clock cost of a single dynamic update vs recomputing from scratch
//! — the sequential-cost side of the paper's separation (Section 6: a
//! direct sequential implementation pays O(Δ) per adjusted node, versus
//! Θ(n + m) for any from-scratch recomputation) — plus the dense-storage
//! ablation: the same settle loop over `NodeMap`/`NodeSet` versus the
//! `BTreeMap`/`BTreeSet` layout it replaced.
//!
//! Running this bench also writes a `BENCH_engine.json` snapshot (into the
//! current directory, or `$BENCH_SNAPSHOT_DIR` if set) recording the dense
//! vs BTree per-update latency on random-graph churn, plus the
//! `engine_sharding` scaling sweep (per-update latency and cross-shard
//! handoff counts of the K-shard engine for K ∈ {1, 2, 4}) and the
//! `engine_parallel` sweep: the thread-executed engine across
//! K ∈ {1, 2, 4} × threads ∈ {1, 2, 4}, as single-toggle latency
//! (`"parallel"` section, gated by `tools/bench_gate.sh`) and as
//! large-batch settle throughput (`"parallel_batch"` section, where the
//! epoch executor actually engages its worker threads), and the
//! `engine_ingest` sweep: a flapping change stream through the
//! coalescing ingestion queue at watermarks Q ∈ {1, 16, 64}
//! (`"ingest"` section — per-change latency, flush counts, and the
//! coalesce fraction `tools/bench_gate.sh` checks via
//! `BENCH_GATE_INGEST_MIN_COALESCE`), and the `"scale"` section: sustained
//! churn on 10^5-node (smoke) up to 10^6-node (full) ER and Chung–Lu
//! instances through a pre-sized engine, with peak-RSS bytes/node and the
//! storage-regrow counter per row (gated via `BENCH_GATE_SCALE_MAX_RATIO`
//! and `BENCH_GATE_SCALE_MAX_BYTES_PER_NODE`), and the `"serve"` section:
//! the concurrent snapshot read path — what per-settle publication costs
//! the writer on the n=4096 batched-toggle row (interleaved plain vs
//! published engine, gated via `BENCH_GATE_SERVE_MAX_OVERHEAD`), plus a
//! full `ServeRun` row (writer replaying a flapping stream against R=2
//! reader threads) reporting read throughput, snapshot staleness, and
//! flush-latency percentiles, and the `"recovery"` section: the
//! durability layer's price — live log-then-publish ingest vs
//! checkpoint restore + WAL replay of the same history, plus the
//! checkpoint image's bytes/node (gated via
//! `BENCH_GATE_RECOVERY_MAX_REPLAY_RATIO` and
//! `BENCH_GATE_RECOVERY_MAX_BYTES_PER_NODE`). The engine rows all drive
//! `dyn DynamicMis` through one shared metering loop
//! (`measure_engine_toggle_ns`) built by `Engine::builder` — the
//! per-engine copies of the toggle harness are gone. `cargo bench
//! --bench engine_updates -- --test` runs everything in single-pass smoke
//! mode and still emits the snapshot (with reduced iteration counts).

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use dmis_bench::baseline_btree::BTreeMisEngine;
use dmis_core::durability::{Checkpoint, MemIo, StorageIo, WriteAheadLog};
use dmis_core::{static_greedy, DynamicMis, Engine, FlushPolicy, ManualClock, SettleStrategy};
use dmis_graph::{generators, NodeId, ShardLayout, TopologyChange};
use dmis_sim::RunConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Graph sizes swept by the `engine_front` group and the snapshot's
/// `"front"` section.
const FRONT_SIZES: [usize; 2] = [1000, 4096];

/// Changes per direction in the front-vs-heap batch toggle: large enough
/// that the settle front (not the graph mutation) dominates the update.
const FRONT_BATCH: usize = 64;

/// Shard counts swept by the `engine_sharding` group and the snapshot.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Worker-thread counts swept by the `engine_parallel` group and the
/// snapshot's `"parallel"` / `"parallel_batch"` sections.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_update_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_update_vs_recompute");
    for &n in &[100usize, 1000, 5000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        let engine = dmis_core::Engine::builder()
            .graph(g.clone())
            .seed(42)
            .build_unsharded();

        group.bench_with_input(BenchmarkId::new("dynamic_edge_toggle", n), &n, |b, _| {
            // Toggle one random edge per iteration (delete + reinsert keeps
            // the graph statistically stationary).
            let mut engine = engine.clone();
            // Pre-sample the toggled edges so the timed loop measures the
            // engine, not the O(m) uniform edge sampler.
            let mut rng = StdRng::seed_from_u64(7);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(engine.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(engine.remove_edge(u, v).expect("valid"));
                black_box(engine.insert_edge(u, v).expect("valid"));
            });
        });

        group.bench_with_input(
            BenchmarkId::new("static_greedy_recompute", n),
            &n,
            |b, _| {
                b.iter(|| {
                    black_box(static_greedy::greedy_mis(
                        engine.graph(),
                        engine.priorities(),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_node_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_node_churn");
    for &n in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, ids) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("insert_delete_node", n), &n, |b, _| {
            let mut engine = dmis_core::Engine::builder()
                .graph(g.clone())
                .seed(3)
                .build_unsharded();
            b.iter(|| {
                let (v, _) = engine
                    .insert_node(&[ids[0], ids[1], ids[2]])
                    .expect("valid");
                black_box(engine.remove_node(v).expect("valid"));
            });
        });
    }
    group.finish();
}

/// Shared dense-vs-BTree workload: ER(n, 8/n) plus 256 pre-sampled edges
/// to toggle. Used by both the criterion group and the snapshot writer so
/// the committed `BENCH_engine.json` measures exactly what the bench runs.
fn toggle_workload(
    n: usize,
) -> (
    dmis_graph::DynGraph,
    Vec<(dmis_graph::NodeId, dmis_graph::NodeId)>,
) {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
    let mut rng = StdRng::seed_from_u64(7);
    let edges: Vec<_> = (0..256)
        .map(|_| generators::random_edge(&g, &mut rng).expect("has edges"))
        .collect();
    (g, edges)
}

/// Dense `NodeMap`/`NodeSet` engine vs the BTree-backed baseline on the
/// identical edge-toggle workload — the storage-layout ablation.
fn bench_dense_vs_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_storage_layout");
    for &n in &[100usize, 1000, 5000] {
        let (g, edges) = toggle_workload(n);

        group.bench_with_input(BenchmarkId::new("dense_edge_toggle", n), &n, |b, _| {
            let mut engine = dmis_core::Engine::builder()
                .graph(g.clone())
                .seed(42)
                .build_unsharded();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(engine.remove_edge(u, v).expect("valid"));
                black_box(engine.insert_edge(u, v).expect("valid"));
            });
        });

        group.bench_with_input(BenchmarkId::new("btree_edge_toggle", n), &n, |b, _| {
            let mut engine = BTreeMisEngine::from_graph(&g, 42);
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(engine.remove_edge(u, v));
                black_box(engine.insert_edge(u, v));
            });
        });
    }
    group.finish();
}

/// Shard-scaling: the K-shard engine on the identical edge-toggle
/// workload, with K=1 as the sharding-overhead baseline. This group
/// times the larger sizes (n ∈ {1000, 5000}); the snapshot's "sharding"
/// section re-measures the same workload generator at the CI sizes
/// (n ∈ {100, 1000}) and adds cross-shard handoff counts.
fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sharding");
    for &n in &[1000usize, 5000] {
        let (g, edges) = toggle_workload(n);
        for &k in &SHARD_COUNTS {
            let name = format!("sharded_edge_toggle_k{k}");
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut engine = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(k))
                    .seed(42)
                    .build_sharded();
                let mut i = 0usize;
                b.iter(|| {
                    let (u, v) = edges[i % edges.len()];
                    i += 1;
                    black_box(engine.remove_edge(u, v).expect("valid"));
                    black_box(engine.insert_edge(u, v).expect("valid"));
                });
            });
        }
    }
    group.finish();
}

/// Batched-settle workload for the parallel engine: toggle `batch`
/// distinct edges of ER(n, 8/n) off and back on through two
/// `apply_batch` calls. Deleting (then reinserting) many edges seeds many
/// shards in one epoch, which is the regime where the epoch executor's
/// worker threads engage (the single-toggle workload never crosses the
/// spawn threshold — by design).
fn batch_workload(n: usize, batch: usize) -> (dmis_graph::DynGraph, Vec<(NodeId, NodeId)>) {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
    let mut rng = StdRng::seed_from_u64(11);
    let mut seen = std::collections::BTreeSet::new();
    let mut edges = Vec::with_capacity(batch);
    while edges.len() < batch {
        let (u, v) = generators::random_edge(&g, &mut rng).expect("has edges");
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push((u, v));
        }
    }
    (g, edges)
}

/// The word-parallel rank-bitset settle front vs the `BinaryHeap` drain
/// it replaced, on the identical batched-toggle workload (64 edge
/// deletions settled in one pass, then the 64 reinsertions): the
/// per-update latency ablation of the dirty-queue realization, with the
/// graph-mutation cost held constant across the two strategies. The
/// snapshot's `"front"` section re-measures this workload and
/// `tools/bench_gate.sh` fails CI if the front is ever slower than the
/// heap (`BENCH_GATE_FRONT_MIN_SPEEDUP`, default 1.0 — fresh vs fresh,
/// so fidelity-independent).
fn bench_front_vs_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_front");
    for &n in &FRONT_SIZES {
        let (g, edges) = batch_workload(n, FRONT_BATCH);
        let deletes: Vec<TopologyChange> = edges
            .iter()
            .map(|&(u, v)| TopologyChange::DeleteEdge(u, v))
            .collect();
        let inserts: Vec<TopologyChange> = edges
            .iter()
            .map(|&(u, v)| TopologyChange::InsertEdge(u, v))
            .collect();
        for (label, strategy) in [
            ("front_batch_toggle", SettleStrategy::RankFront),
            ("heap_batch_toggle", SettleStrategy::BinaryHeap),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut engine = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .seed(42)
                    .build_unsharded();
                engine.set_settle_strategy(strategy);
                b.iter(|| {
                    black_box(engine.apply_batch(&deletes).expect("valid"));
                    black_box(engine.apply_batch(&inserts).expect("valid"));
                });
            });
        }
    }
    group.finish();
}

/// The thread-executed engine on the identical single-toggle workload
/// (K = 4 across the thread axis; threads only engage past the spawn
/// threshold, so this measures the parallel plumbing's overhead on the
/// paper's tiny-cascade common case), plus the batched-settle workload
/// where the worker threads actually run.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallel");
    let n = 1000usize;
    let (g, edges) = toggle_workload(n);
    for &t in &THREAD_COUNTS {
        let name = format!("parallel_edge_toggle_k4_t{t}");
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            let mut engine = dmis_core::Engine::builder()
                .graph(g.clone())
                .sharding(ShardLayout::striped(4))
                .threads(t)
                .seed(42)
                .build_parallel();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(engine.remove_edge(u, v).expect("valid"));
                black_box(engine.insert_edge(u, v).expect("valid"));
            });
        });
    }
    let bn = 4096usize;
    let (bg, bedges) = batch_workload(bn, 1024);
    let deletes: Vec<TopologyChange> = bedges
        .iter()
        .map(|&(u, v)| TopologyChange::DeleteEdge(u, v))
        .collect();
    let inserts: Vec<TopologyChange> = bedges
        .iter()
        .map(|&(u, v)| TopologyChange::InsertEdge(u, v))
        .collect();
    for &t in &THREAD_COUNTS {
        let name = format!("parallel_batch_toggle_k4_t{t}");
        group.bench_with_input(BenchmarkId::new(name, bn), &bn, |b, _| {
            let mut engine = dmis_core::Engine::builder()
                .graph(bg.clone())
                .sharding(ShardLayout::striped(4))
                .threads(t)
                .seed(42)
                .build_parallel();
            b.iter(|| {
                black_box(engine.apply_batch(&deletes).expect("valid"));
                black_box(engine.apply_batch(&inserts).expect("valid"));
            });
        });
    }
    group.finish();
}

/// The ingestion queue on the flapping-stream workload: a 256-change
/// window pushed through `IngestRun` per iteration, swept over the
/// auto-flush watermark. Q=1 is unbatched per-change application; deeper
/// queues amortize settle passes and cancel opposing churn before any
/// settle work. The snapshot's `"ingest"` section re-measures this
/// workload and `tools/bench_gate.sh` checks the deep-queue coalesce
/// fraction (`BENCH_GATE_INGEST_MIN_COALESCE`).
fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ingest");
    let n = 1000usize;
    let (g, edges) = toggle_workload(n);
    let pool: Vec<(NodeId, NodeId)> = edges.iter().copied().take(32).collect();
    let stream = flapping_stream(&g, &pool, 256);
    for &q in &[1usize, 16, 64] {
        let name = format!("ingest_flapping_q{q}");
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            let mut run = RunConfig::new(g.clone())
                .layout(ShardLayout::striped(4))
                .watermark(q)
                .seed(42)
                .ingest();
            b.iter(|| {
                for change in &stream {
                    black_box(run.push(change).expect("valid"));
                }
                black_box(run.flush().expect("valid"));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_update_vs_recompute, bench_node_churn, bench_dense_vs_btree, bench_front_vs_heap, bench_sharding, bench_parallel, bench_ingest
}

/// Median wall-clock nanoseconds per toggle over `iters` toggles.
fn measure_toggle_ns(mut step: impl FnMut(), iters: usize, samples: usize) -> f64 {
    let mut per_sample: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                step();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_sample.sort_by(f64::total_cmp);
    per_sample[per_sample.len() / 2]
}

/// Per-sample **minima** of two step functions sampled interleaved
/// (a, b, a, b, …). Interleaving lands slow machine drift — thermal
/// throttling, noisy neighbors — on both sides equally, and the minimum
/// is the least-contended observation of each side, so scheduler noise
/// cancels out of the ratio instead of flipping its sign run to run
/// (medians were observed swinging a parity-true ratio between 0.80x
/// and 1.01x across identical full-fidelity runs on a busy host). Use
/// whenever the *ratio* of the two numbers is what downstream consumers
/// (the bench gate) act on.
fn measure_interleaved_ns(
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    iters: usize,
    samples: usize,
) -> (f64, f64) {
    let mut a_ns = f64::MAX;
    let mut b_ns = f64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            a();
        }
        a_ns = a_ns.min(start.elapsed().as_nanos() as f64 / iters as f64);
        let start = Instant::now();
        for _ in 0..iters {
            b();
        }
        b_ns = b_ns.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    (a_ns, b_ns)
}

/// Median ns per edge toggle of any [`DynamicMis`] engine — the shared
/// metering loop behind the snapshot's dense, sharded, and parallel
/// rows. One harness, every engine flavor: the per-engine copies of this
/// loop were deleted when the unified API landed.
fn measure_engine_toggle_ns(
    engine: &mut dyn DynamicMis,
    edges: &[(NodeId, NodeId)],
    iters: usize,
    samples: usize,
) -> f64 {
    let mut i = 0usize;
    measure_toggle_ns(
        || {
            let (u, v) = edges[i % edges.len()];
            i += 1;
            black_box(engine.remove_edge(u, v).expect("valid"));
            black_box(engine.insert_edge(u, v).expect("valid"));
        },
        iters,
        samples,
    )
}

/// The bench's flapping workload: a **closed** toggle stream
/// ([`dmis_graph::stream::flapping_stream`]) over a bounded pool of
/// `g`'s own edges, so replaying it per bench iteration / snapshot
/// sample stays valid indefinitely.
fn flapping_stream(
    g: &dmis_graph::DynGraph,
    pool: &[(NodeId, NodeId)],
    len: usize,
) -> Vec<TopologyChange> {
    let mut rng = StdRng::seed_from_u64(29);
    dmis_graph::stream::flapping_stream(g, pool, len, true, &mut rng)
}

/// Resets the process's peak-RSS high-water mark (`VmHWM`) to the
/// current RSS, so each scale row's peak reading is its own and not a
/// leftover from an earlier, larger row. Linux-only; elsewhere the scale
/// rows report 0 bytes/node and the gate's memory check is vacuous.
fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    {
        // "5" is the documented clear_refs command for resetting VmHWM.
        let _ = std::fs::write("/proc/self/clear_refs", "5");
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where that interface does not exist.
fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
    }
    0
}

/// Writes the dense-vs-BTree latency snapshot consumed by CI.
fn write_snapshot(test_mode: bool) {
    let (iters, samples) = if test_mode { (16, 3) } else { (512, 9) };
    let mut entries = Vec::new();
    // Snapshot covers the CI-sized prefix of the bench group's n sweep.
    for &n in &[100usize, 1000] {
        let (g, edges) = toggle_workload(n);

        let mut dense = Engine::builder().graph(g.clone()).seed(42).build();
        let dense_ns = measure_engine_toggle_ns(&mut *dense, &edges, iters, samples);

        let mut btree = BTreeMisEngine::from_graph(&g, 42);
        let mut j = 0usize;
        let btree_ns = measure_toggle_ns(
            || {
                let (u, v) = edges[j % edges.len()];
                j += 1;
                black_box(btree.remove_edge(u, v));
                black_box(btree.insert_edge(u, v));
            },
            iters,
            samples,
        );

        entries.push(format!(
            "  {{\"n\": {n}, \"dense_ns_per_toggle\": {dense_ns:.1}, \
             \"btree_ns_per_toggle\": {btree_ns:.1}, \"speedup\": {:.2}}}",
            btree_ns / dense_ns
        ));
    }
    // Front-vs-heap section: the dirty-queue ablation on the batched
    // toggle workload (the settle-front-heavy update shape; see
    // bench_front_vs_heap). Both rows of a size come from the same fresh
    // run, so the speedup the gate checks is fidelity-independent.
    let mut front_entries = Vec::new();
    for &n in &FRONT_SIZES {
        let (g, bedges) = batch_workload(n, FRONT_BATCH);
        let deletes: Vec<TopologyChange> = bedges
            .iter()
            .map(|&(u, v)| TopologyChange::DeleteEdge(u, v))
            .collect();
        let inserts: Vec<TopologyChange> = bedges
            .iter()
            .map(|&(u, v)| TopologyChange::InsertEdge(u, v))
            .collect();
        let changes = 2 * FRONT_BATCH;
        let mut front = dmis_core::Engine::builder()
            .graph(g.clone())
            .seed(42)
            .build_unsharded();
        let mut heap = dmis_core::Engine::builder()
            .graph(g.clone())
            .seed(42)
            .build_unsharded();
        heap.set_settle_strategy(SettleStrategy::BinaryHeap);
        let (front_ns, heap_ns) = measure_interleaved_ns(
            || {
                black_box(front.apply_batch(&deletes).expect("valid"));
                black_box(front.apply_batch(&inserts).expect("valid"));
            },
            || {
                black_box(heap.apply_batch(&deletes).expect("valid"));
                black_box(heap.apply_batch(&inserts).expect("valid"));
            },
            iters,
            samples,
        );
        let (front_ns, heap_ns) = (front_ns / changes as f64, heap_ns / changes as f64);
        front_entries.push(format!(
            "  {{\"n\": {n}, \"front_ns_per_change\": {front_ns:.1}, \
             \"heap_ns_per_change\": {heap_ns:.1}, \"speedup\": {:.2}}}",
            heap_ns / front_ns
        ));
    }
    // Sharded single-toggle row of the same ablation: the per-shard heap
    // was already persistent (no per-update malloc), so this isolates
    // what the front's rank indirection costs on the tiny-cascade common
    // case against what the u32 rank compares save. Reported for
    // visibility, not gated: single toggles are so short that this
    // container's noise floor (same-code replicate rows spread ~1.4x)
    // dwarfs the strategy delta even with interleaved sampling.
    {
        let n = 1000usize;
        let (g, edges) = toggle_workload(n);
        let mut front = dmis_core::Engine::builder()
            .graph(g.clone())
            .sharding(ShardLayout::striped(4))
            .seed(42)
            .build_sharded();
        let mut heap = dmis_core::Engine::builder()
            .graph(g.clone())
            .sharding(ShardLayout::striped(4))
            .seed(42)
            .build_sharded();
        heap.set_settle_strategy(SettleStrategy::BinaryHeap);
        let (mut i, mut j) = (0usize, 0usize);
        let (front_ns, heap_ns) = measure_interleaved_ns(
            || {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(front.remove_edge(u, v).expect("valid"));
                black_box(front.insert_edge(u, v).expect("valid"));
            },
            || {
                let (u, v) = edges[j % edges.len()];
                j += 1;
                black_box(heap.remove_edge(u, v).expect("valid"));
                black_box(heap.insert_edge(u, v).expect("valid"));
            },
            iters,
            samples,
        );
        front_entries.push(format!(
            "  {{\"n\": {n}, \"shards\": 4, \"front_ns_per_toggle\": {front_ns:.1}, \
             \"heap_ns_per_toggle\": {heap_ns:.1}, \"speedup\": {:.2}}}",
            heap_ns / front_ns
        ));
    }
    // Shard-scaling section: per-update latency and cross-shard handoff
    // traffic for each K on the same toggle workload.
    let mut shard_entries = Vec::new();
    for &n in &[100usize, 1000] {
        let (g, edges) = toggle_workload(n);
        for &k in &SHARD_COUNTS {
            let mut engine = Engine::builder()
                .graph(g.clone())
                .seed(42)
                .sharding(ShardLayout::striped(k))
                .build();
            let mut i = 0usize;
            let mut handoffs = 0usize;
            let mut toggles = 0usize;
            let ns = measure_toggle_ns(
                || {
                    let (u, v) = edges[i % edges.len()];
                    i += 1;
                    let r1 = engine.remove_edge(u, v).expect("valid");
                    let r2 = engine.insert_edge(u, v).expect("valid");
                    handoffs += r1.cross_shard_handoffs() + r2.cross_shard_handoffs();
                    toggles += 1;
                    black_box(());
                },
                iters,
                samples,
            );
            shard_entries.push(format!(
                "  {{\"n\": {n}, \"shards\": {k}, \"ns_per_toggle\": {ns:.1}, \
                 \"handoffs_per_toggle\": {:.3}}}",
                handoffs as f64 / toggles as f64
            ));
        }
    }
    // Parallel sweep, single-toggle latency: K × threads on the same
    // workload generator, in the *production* configuration (default
    // spawn threshold). A single toggle never crosses the threshold, so
    // threads must never engage here: the T column's rows execute an
    // identical code path, which makes them same-code replicates — the
    // spread across T is the measurement noise floor, useful when judging
    // the gate margin. tools/bench_gate.sh fails CI when (K=4, T=4)
    // drifts beyond a tolerance of the sequential (K=1, T=1) row, which
    // is exactly the regression that would mean spawns leaked into the
    // tiny-cascade fast path.
    let mut par_entries = Vec::new();
    {
        let n = 1000usize;
        let (g, edges) = toggle_workload(n);
        for &k in &SHARD_COUNTS {
            for &t in &THREAD_COUNTS {
                let mut engine = Engine::builder()
                    .graph(g.clone())
                    .seed(42)
                    .sharding(ShardLayout::striped(k))
                    .threads(t)
                    .build();
                let ns = measure_engine_toggle_ns(&mut *engine, &edges, iters, samples);
                par_entries.push(format!(
                    "  {{\"n\": {n}, \"shards\": {k}, \"threads\": {t}, \
                     \"ns_per_toggle\": {ns:.1}}}"
                ));
            }
        }
    }
    // Parallel sweep, batched-settle throughput: toggling many edges per
    // apply_batch seeds every shard in one epoch, which is where the
    // worker threads actually engage (pending work crosses the spawn
    // threshold). Epoch counts are identical across thread counts —
    // that's the determinism contract — so the column is reported once
    // per K via the T=1 run and checked against the others.
    let mut par_batch_entries = Vec::new();
    {
        let bn = 4096usize;
        let bsize = if test_mode { 128 } else { 1024 };
        let bsamples = if test_mode { 2 } else { 5 };
        let (g, bedges) = batch_workload(bn, bsize);
        let deletes: Vec<TopologyChange> = bedges
            .iter()
            .map(|&(u, v)| TopologyChange::DeleteEdge(u, v))
            .collect();
        let inserts: Vec<TopologyChange> = bedges
            .iter()
            .map(|&(u, v)| TopologyChange::InsertEdge(u, v))
            .collect();
        for &k in &SHARD_COUNTS {
            for &t in &THREAD_COUNTS {
                let mut engine = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(k))
                    .threads(t)
                    .seed(42)
                    .build_parallel();
                let mut epochs = 0usize;
                let ns_per_round = measure_toggle_ns(
                    || {
                        let r1 = engine.apply_batch(&deletes).expect("valid");
                        let r2 = engine.apply_batch(&inserts).expect("valid");
                        epochs = r1.settle_epochs().max(r2.settle_epochs());
                        black_box(());
                    },
                    1,
                    bsamples,
                );
                let changes = 2 * bsize;
                par_batch_entries.push(format!(
                    "  {{\"batch_n\": {bn}, \"shards\": {k}, \"threads\": {t}, \
                     \"batch_changes\": {changes}, \"ns_per_change\": {:.1}, \
                     \"max_epochs\": {epochs}}}",
                    ns_per_round / changes as f64
                ));
            }
        }
    }
    // Ingestion sweep: the flapping stream (bounded edge pool, so
    // windows revisit edges) through the coalescing queue at increasing
    // watermarks. ns_per_change prices the amortization win;
    // coalesce_fraction is the share of pushed changes the queue
    // eliminated before any settle work — the quantity the bench gate
    // checks at the deepest queue.
    let mut ingest_entries = Vec::new();
    {
        let n = 1000usize;
        let (g, edges) = toggle_workload(n);
        let pool: Vec<(NodeId, NodeId)> = edges.iter().copied().take(32).collect();
        let stream_len = if test_mode { 512 } else { 4096 };
        let stream = flapping_stream(&g, &pool, stream_len);
        for &q in &[1usize, 16, 64] {
            let mut run = RunConfig::new(g.clone())
                .layout(ShardLayout::striped(4))
                .watermark(q)
                .seed(42)
                .ingest();
            let mut per_sample: Vec<f64> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    for change in &stream {
                        black_box(run.push(change).expect("valid"));
                    }
                    black_box(run.flush().expect("valid"));
                    start.elapsed().as_nanos() as f64 / stream.len() as f64
                })
                .collect();
            per_sample.sort_by(f64::total_cmp);
            let ns = per_sample[per_sample.len() / 2];
            let fraction = run.coalesced_changes() as f64 / run.pushed() as f64;
            ingest_entries.push(format!(
                "  {{\"n\": {n}, \"queue_depth\": {q}, \"ns_per_change\": {ns:.1}, \
                 \"coalesce_fraction\": {fraction:.3}, \"flushes\": {}, \
                 \"pushed\": {}}}",
                run.flushes(),
                run.pushed()
            ));
        }
    }
    // Flush-policy sweep: policy × adversarial-stream cells, fully
    // deterministic — a manual clock advanced one tick (1 ms) per push
    // times everything, so the coalesce fractions and delay percentiles
    // are pure functions of the streams and identical on every host.
    // "flapping" is the bounded-pool toggle stream (coalescing-friendly);
    // "trickle" is the fresh-pair anti-coalescing stream (no edge key
    // revisited, so batching buys delay and nothing else). The gate
    // checks that the adaptive smoother recovers the deep watermark's
    // coalescing win on flapping (BENCH_GATE_INGEST_ADAPTIVE_MIN_RATIO)
    // while beating depth-64's p99 queue delay on trickle
    // (BENCH_GATE_INGEST_P99_MAX_DELAY, in ticks).
    let mut policy_entries = Vec::new();
    {
        let n = 1000usize;
        let (g, edges) = toggle_workload(n);
        let ids: Vec<NodeId> = g.nodes().collect();
        let pool: Vec<(NodeId, NodeId)> = edges.iter().copied().take(32).collect();
        let stream_len = if test_mode { 512 } else { 4096 };
        let mut rng = StdRng::seed_from_u64(31);
        let trickle = dmis_graph::stream::fresh_pair_stream(&g, &ids, stream_len, &mut rng);
        let streams: &[(&str, Vec<TopologyChange>)] = &[
            ("flapping", flapping_stream(&g, &pool, stream_len)),
            ("trickle", trickle),
        ];
        let policies: &[(&str, FlushPolicy)] = &[
            ("depth:1", FlushPolicy::Depth(1)),
            ("depth:16", FlushPolicy::Depth(16)),
            ("depth:64", FlushPolicy::Depth(64)),
            ("adaptive", FlushPolicy::adaptive()),
        ];
        for (stream_name, stream) in streams {
            for (policy_name, policy) in policies {
                let clock = ManualClock::new();
                let mut run = RunConfig::new(g.clone())
                    .layout(ShardLayout::striped(4))
                    .policy(policy.clone())
                    .clock(std::sync::Arc::new(clock.clone()))
                    .seed(42)
                    .ingest();
                for change in stream {
                    run.push(change).expect("valid");
                    clock.advance(std::time::Duration::from_millis(1));
                }
                run.flush().expect("valid");
                let fraction = run.coalesced_changes() as f64 / run.pushed() as f64;
                policy_entries.push(format!(
                    "  {{\"n\": {n}, \"stream\": \"{stream_name}\", \
                     \"policy\": \"{policy_name}\", \
                     \"coalesce_fraction\": {fraction:.3}, \"flushes\": {}, \
                     \"pushed\": {}, \"delay_p50_ticks\": {}, \
                     \"delay_p99_ticks\": {}}}",
                    run.flushes(),
                    run.pushed(),
                    run.delay_p50().as_millis(),
                    run.delay_p99().as_millis()
                ));
            }
        }
    }
    // Scale-tier section: sustained edge-toggle churn on million-node-class
    // instances of the two families whose memory layout stresses diverge —
    // uniform-degree ER (G(n, m=4n)) and Chung–Lu with √n-degree hubs (the
    // chunked-adjacency regime). Each row prices one (n, family) cell:
    // ns/change at steady state, peak-RSS bytes/node for the whole
    // graph+engine working set (VmHWM delta around the row, reset between
    // rows), and the engine's storage-regrow count across the measured
    // churn — pre-sized arenas make that exactly 0, and the gate
    // (tools/bench_gate.sh, BENCH_GATE_SCALE_*) holds the 10^5/10^6 rows to
    // a fixed multiple of the n=4096 figure. Smoke mode stops at 10^5; the
    // committed snapshot (BENCH_SNAPSHOT_FULL) carries the 10^6 rows.
    let mut scale_entries = Vec::new();
    {
        let sizes: &[usize] = if test_mode {
            &[4096, 100_000]
        } else {
            &[4096, 100_000, 1_000_000]
        };
        for &n in sizes {
            for family in ["er", "chung_lu"] {
                reset_peak_rss();
                let rss_before = peak_rss_bytes();
                let mut rng = StdRng::seed_from_u64(n as u64);
                let (g, _) = match family {
                    "er" => generators::gnm(n, 4 * n, &mut rng),
                    _ => generators::chung_lu(n, 8.0, 2.5, &mut rng),
                };
                let edge_count = g.edge_count();
                let max_degree = g.max_degree();
                // Pre-sample the toggled edges from one O(m) edge scan —
                // per-call `random_edge` would put an O(m) sampler inside
                // the row setup 256 times over.
                let all: Vec<(NodeId, NodeId)> = g.edges().map(|k| k.endpoints()).collect();
                let mut rng = StdRng::seed_from_u64(7);
                let edges: Vec<(NodeId, NodeId)> = (0..256)
                    .map(|_| all[rng.random_range(0..all.len())])
                    .collect();
                drop(all);
                let mut engine = Engine::builder()
                    .graph(g)
                    .seed(42)
                    .capacity(n)
                    .build_unsharded();
                let regrows_before = engine.storage_regrows();
                let ns = measure_engine_toggle_ns(&mut engine, &edges, iters, samples);
                let regrows = engine.storage_regrows() - regrows_before;
                let peak = peak_rss_bytes().saturating_sub(rss_before);
                let bytes_per_node = peak as f64 / n as f64;
                engine.assert_internally_consistent_sampled(1024, n as u64);
                scale_entries.push(format!(
                    "  {{\"n\": {n}, \"family\": \"{family}\", \"edges\": {edge_count}, \
                     \"max_degree\": {max_degree}, \"ns_per_change\": {ns:.1}, \
                     \"bytes_per_node\": {bytes_per_node:.1}, \"churn_regrows\": {regrows}}}"
                ));
            }
        }
    }
    // Serve-tier section: the concurrent snapshot read path. The first
    // row prices what per-settle publication costs the writer — the same
    // n=4096 batched-toggle workload as the "front" section, run
    // interleaved on a plain engine and on one with its snapshot channel
    // attached (a live `MisReader` held through the measurement). One
    // settle publishes once, so the batch shape is the production shape;
    // `tools/bench_gate.sh` fails CI when the overhead ratio exceeds
    // BENCH_GATE_SERVE_MAX_OVERHEAD (default 1.10). The second row runs
    // the full `ServeRun` harness — writer flushing a flapping stream at
    // watermark 8 against R=2 reader threads — and records read
    // throughput, snapshot staleness, epoch regressions (always 0 unless
    // the channel is broken), and flush-latency percentiles.
    let mut serve_entries = Vec::new();
    {
        let n = 4096usize;
        let (g, bedges) = batch_workload(n, FRONT_BATCH);
        let deletes: Vec<TopologyChange> = bedges
            .iter()
            .map(|&(u, v)| TopologyChange::DeleteEdge(u, v))
            .collect();
        let inserts: Vec<TopologyChange> = bedges
            .iter()
            .map(|&(u, v)| TopologyChange::InsertEdge(u, v))
            .collect();
        let changes = 2 * FRONT_BATCH;
        let mut plain = dmis_core::Engine::builder()
            .graph(g.clone())
            .seed(42)
            .build_unsharded();
        let mut published = dmis_core::Engine::builder()
            .graph(g.clone())
            .seed(42)
            .build_unsharded();
        let reader = published.reader();
        let (plain_ns, published_ns) = measure_interleaved_ns(
            || {
                black_box(plain.apply_batch(&deletes).expect("valid"));
                black_box(plain.apply_batch(&inserts).expect("valid"));
            },
            || {
                black_box(published.apply_batch(&deletes).expect("valid"));
                black_box(published.apply_batch(&inserts).expect("valid"));
            },
            iters,
            samples,
        );
        assert!(reader.epoch() > 0, "published engine actually published");
        let (plain_ns, published_ns) = (plain_ns / changes as f64, published_ns / changes as f64);
        serve_entries.push(format!(
            "  {{\"n\": {n}, \"plain_ns_per_change\": {plain_ns:.1}, \
             \"published_ns_per_change\": {published_ns:.1}, \
             \"publish_overhead\": {:.3}}}",
            published_ns / plain_ns
        ));
    }
    {
        let n = 1000usize;
        let (g, edges) = toggle_workload(n);
        let pool: Vec<(NodeId, NodeId)> = edges.iter().copied().take(32).collect();
        let stream_len = if test_mode { 512 } else { 4096 };
        let stream = flapping_stream(&g, &pool, stream_len);
        let readers = 2usize;
        let mut run = RunConfig::new(g)
            .layout(ShardLayout::striped(4))
            .watermark(8)
            .seed(42)
            .readers(readers)
            .probes(32)
            .serve();
        let report = run.run(&stream).expect("valid serve run");
        serve_entries.push(format!(
            "  {{\"n\": {n}, \"readers\": {readers}, \"reads_per_sec\": {:.0}, \
             \"staleness_mean\": {:.3}, \"staleness_max\": {}, \
             \"epoch_regressions\": {}, \"update_p50_ns\": {}, \
             \"update_p99_ns\": {}, \"flushes\": {}}}",
            report.reads_per_sec,
            report.staleness_mean,
            report.staleness_max,
            report.epoch_regressions,
            report.update_p50_ns,
            report.update_p99_ns,
            report.flushes
        ));
    }
    // Recovery-tier section: what the durability layer costs. One run
    // streams C single-change windows through the log-then-publish path
    // (WAL append before every apply — the production write path), then
    // recovers from the resulting store with the two recovery phases
    // timed separately: `restore_ns` is checkpoint decode + engine
    // rebuild + witness check (O(n + m), paid once), and
    // `replay_ns_per_change` is the WAL scan + re-apply of the logged
    // suffix (O(touched) per change, same asymptotics as live ingest).
    // tools/bench_gate.sh holds `replay_ratio` (replayed ns/change over
    // live ns/change) under BENCH_GATE_RECOVERY_MAX_REPLAY_RATIO and the
    // checkpoint image's bytes/node under
    // BENCH_GATE_RECOVERY_MAX_BYTES_PER_NODE.
    let mut recovery_entries = Vec::new();
    {
        let n = 4096usize;
        let changes = 512usize;
        let rsamples = if test_mode { 2 } else { 3 };
        let (g, edges) = toggle_workload(n);
        let pool: Vec<(NodeId, NodeId)> = edges.iter().copied().take(32).collect();
        let stream = flapping_stream(&g, &pool, changes);
        let (mut live_ns, mut restore_ns, mut replay_ns) = (f64::MAX, f64::MAX, f64::MAX);
        let mut checkpoint_bytes = 0usize;
        for _ in 0..rsamples {
            let store = MemIo::new();
            let io: std::sync::Arc<dyn StorageIo> = std::sync::Arc::new(store);
            let mut engine = Engine::builder().graph(g.clone()).seed(42).build();
            Checkpoint::capture(&*engine, 0)
                .save(io.as_ref())
                .expect("mem io");
            let mut wal = WriteAheadLog::create(std::sync::Arc::clone(&io)).expect("mem io");
            let start = Instant::now();
            for change in &stream {
                let window = std::slice::from_ref(change);
                wal.append(window).expect("mem io");
                black_box(engine.apply_batch(window).expect("valid"));
            }
            live_ns = live_ns.min(start.elapsed().as_nanos() as f64 / changes as f64);
            checkpoint_bytes = Checkpoint::capture(&*engine, changes as u64).encode().len();

            let start = Instant::now();
            let image = Checkpoint::load(io.as_ref())
                .expect("mem io")
                .expect("saved");
            let mut recovered = image.restore().expect("valid image");
            restore_ns = restore_ns.min(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            let (_wal, records) = WriteAheadLog::open(std::sync::Arc::clone(&io)).expect("mem io");
            for record in &records {
                black_box(recovered.apply_batch(record.changes()).expect("valid"));
            }
            replay_ns = replay_ns.min(start.elapsed().as_nanos() as f64 / changes as f64);
            assert_eq!(recovered.mis(), engine.mis(), "recovery is bit-identical");
        }
        recovery_entries.push(format!(
            "  {{\"n\": {n}, \"changes\": {changes}, \
             \"live_ns_per_change\": {live_ns:.1}, \
             \"replay_ns_per_change\": {replay_ns:.1}, \
             \"replay_ratio\": {:.3}, \"restore_ns\": {restore_ns:.0}, \
             \"checkpoint_bytes\": {checkpoint_bytes}, \
             \"bytes_per_node\": {:.1}}}",
            replay_ns / live_ns,
            checkpoint_bytes as f64 / n as f64
        ));
    }
    let dir = std::env::var("BENCH_SNAPSHOT_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_engine.json");
    let body = format!(
        "{{\"bench\": \"engine_updates\", \"workload\": \"er_random_edge_toggle\", \
         \"mode\": \"{}\", \"results\": [\n{}\n],\n \"front\": [\n{}\n],\n \
         \"sharding\": [\n{}\n],\n \
         \"parallel\": [\n{}\n],\n \"parallel_batch\": [\n{}\n],\n \
         \"ingest\": [\n{}\n],\n \"ingest_policy\": [\n{}\n],\n \
         \"scale\": [\n{}\n],\n \"serve\": [\n{}\n],\n \"recovery\": [\n{}\n]}}\n",
        if test_mode { "smoke" } else { "full" },
        entries.join(",\n"),
        front_entries.join(",\n"),
        shard_entries.join(",\n"),
        par_entries.join(",\n"),
        par_batch_entries.join(",\n"),
        ingest_entries.join(",\n"),
        policy_entries.join(",\n"),
        scale_entries.join(",\n"),
        serve_entries.join(",\n"),
        recovery_entries.join(",\n")
    );
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn main() {
    benches();
    let test_mode = std::env::args().any(|a| a == "--test");
    // CI runs the criterion groups in smoke mode but still wants
    // full-fidelity snapshot numbers for the regression gate
    // (tools/bench_gate.sh compares against the committed snapshot, so
    // both sides must use the same iteration counts).
    let full_forced = std::env::var_os("BENCH_SNAPSHOT_FULL").is_some();
    write_snapshot(test_mode && !full_forced);
}
