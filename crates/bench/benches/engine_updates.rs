//! Wall-clock cost of a single dynamic update vs recomputing from scratch
//! — the sequential-cost side of the paper's separation (Section 6: a
//! direct sequential implementation pays O(Δ) per adjusted node, versus
//! Θ(n + m) for any from-scratch recomputation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dmis_core::{static_greedy, MisEngine};
use dmis_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_update_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_update_vs_recompute");
    for &n in &[100usize, 1000, 5000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        let engine = MisEngine::from_graph(g.clone(), 42);

        group.bench_with_input(BenchmarkId::new("dynamic_edge_toggle", n), &n, |b, _| {
            // Toggle one random edge per iteration (delete + reinsert keeps
            // the graph statistically stationary).
            let mut engine = engine.clone();
            // Pre-sample the toggled edges so the timed loop measures the
            // engine, not the O(m) uniform edge sampler.
            let mut rng = StdRng::seed_from_u64(7);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(engine.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(engine.remove_edge(u, v).expect("valid"));
                black_box(engine.insert_edge(u, v).expect("valid"));
            });
        });

        group.bench_with_input(BenchmarkId::new("static_greedy_recompute", n), &n, |b, _| {
            b.iter(|| black_box(static_greedy::greedy_mis(engine.graph(), engine.priorities())));
        });
    }
    group.finish();
}

fn bench_node_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_node_churn");
    for &n in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, ids) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("insert_delete_node", n), &n, |b, _| {
            let mut engine = MisEngine::from_graph(g.clone(), 3);
            b.iter(|| {
                let (v, _) = engine
                    .insert_node([ids[0], ids[1], ids[2]])
                    .expect("valid");
                black_box(engine.remove_node(v).expect("valid"));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_update_vs_recompute, bench_node_churn
}
criterion_main!(benches);
