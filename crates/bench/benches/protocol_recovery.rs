//! Wall-clock cost of one distributed recovery (simulator time) for the
//! two protocols of the paper, per change type.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dmis_graph::{generators, DistributedChange};
use dmis_protocol::{ConstantBroadcast, TemplateDirect};
use dmis_sim::{Protocol, SyncNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_edge_toggle<P: Protocol + Copy>(c: &mut Criterion, name: &str, proto: P) {
    let mut group = c.benchmark_group(format!("recovery_{name}"));
    for &n in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("edge_toggle", n), &n, |b, _| {
            let mut net = SyncNetwork::bootstrap(proto, g.clone(), 1);
            let mut rng = StdRng::seed_from_u64(9);
            let edges: Vec<_> = (0..256)
                .map(|_| {
                    generators::random_edge(&net.logical_graph(), &mut rng).expect("has edges")
                })
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(
                    net.apply_change(&DistributedChange::AbruptDeleteEdge(u, v))
                        .expect("valid"),
                );
                black_box(
                    net.apply_change(&DistributedChange::InsertEdge(u, v))
                        .expect("valid"),
                );
            });
        });
    }
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    bench_edge_toggle(c, "algorithm2", ConstantBroadcast);
    bench_edge_toggle(c, "direct_template", TemplateDirect);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_protocols
}
criterion_main!(benches);
