//! Wall-clock comparison against the baselines: one dynamic update vs one
//! Luby recompute vs one deterministic-greedy update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dmis_graph::{generators, TopologyChange};
use dmis_protocol::{luby, DeterministicGreedy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    for &n in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = generators::erdos_renyi(n, 8.0 / n as f64, &mut rng);

        group.bench_with_input(BenchmarkId::new("random_greedy_update", n), &n, |b, _| {
            let mut engine = dmis_core::Engine::builder()
                .graph(g.clone())
                .seed(1)
                .build_unsharded();
            let mut rng = StdRng::seed_from_u64(2);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(engine.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(engine.remove_edge(u, v).expect("valid"));
                black_box(engine.insert_edge(u, v).expect("valid"));
            });
        });

        group.bench_with_input(BenchmarkId::new("det_greedy_update", n), &n, |b, _| {
            let mut det = DeterministicGreedy::new(g.clone());
            let mut rng = StdRng::seed_from_u64(2);
            let edges: Vec<_> = (0..256)
                .map(|_| generators::random_edge(det.graph(), &mut rng).expect("has edges"))
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(det.apply(&TopologyChange::DeleteEdge(u, v)).expect("valid"));
                black_box(det.apply(&TopologyChange::InsertEdge(u, v)).expect("valid"));
            });
        });

        group.bench_with_input(BenchmarkId::new("luby_full_recompute", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(luby::run(&g, &mut rng)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_baselines
}
criterion_main!(benches);
