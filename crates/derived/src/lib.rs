//! # dmis-derived
//!
//! History-independent derived structures (Section 5 of the paper): because
//! the dynamic MIS algorithm's output distribution depends only on the
//! current graph, standard reductions compose with it to give
//! history-independent algorithms for other problems.
//!
//! - [`DynamicMatching`] — **maximal matching** by simulating the MIS
//!   engine on the line graph `L(G)`: edges of `G` are nodes of `L(G)`, and
//!   an MIS of `L(G)` is exactly a maximal matching of `G`. Worked example
//!   (Section 5, Example 2): on disjoint 3-edge paths the expected matching
//!   size is `5n/12` versus the worst case `n/4`.
//! - [`ColoringEngine`] — dynamic **greedy coloring** by random order:
//!   every node holds the smallest color unused by its lower-π neighbors
//!   (at most `Δ+1` colors). This is the random greedy coloring of
//!   Section 5, Example 3; its per-change adjustment cost is `O(Δ)` rather
//!   than `O(1)` — the open gap the paper discusses.
//! - [`BlowupColoring`] — (Δ+1)-coloring via the clique blow-up reduction
//!   Luby: one MIS computation on `G'` yields one chosen copy per node,
//!   whose index is a proper color.
//! - [`verify`] — checkers for maximality and properness.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod blowup_coloring;
mod coloring;
mod matching;
mod matching_native;

pub mod verify;

pub use blowup_coloring::BlowupColoring;
pub use coloring::{ColoringEngine, ColoringReceipt};
pub use matching::DynamicMatching;
pub use matching_native::{EdgeFlip, MatchingReceipt, NativeMatching};
