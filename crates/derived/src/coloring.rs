use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use dmis_core::{Priority, PriorityMap, RankIndex, SettleStrategy};
use dmis_graph::{DynGraph, GraphError, NodeId, NodeMap, RankFront, TopologyChange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one dynamic recoloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringReceipt {
    /// Nodes whose color changed, with the new color, in settlement order.
    pub recolored: Vec<(NodeId, usize)>,
}

impl ColoringReceipt {
    /// Number of color adjustments.
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.recolored.len()
    }
}

/// Dynamic **random greedy coloring**: every node holds the smallest color
/// not used by any lower-π neighbor (first-fit in the random order).
///
/// This simulates the sequential random greedy coloring the paper's
/// Section 5, Example 3 discusses: on the complete bipartite graph minus a
/// perfect matching it 2-colors with probability `1 − 1/n`, so its expected
/// palette is within a constant factor of optimal — while any worst-case
/// (history-dependent) greedy can be forced to Θ(Δ) colors.
///
/// The paper also notes the cost of dynamically maintaining this structure:
/// a single topology change may recolor `O(Δ)` nodes (it asks, as an open
/// question, whether O(1) is possible). Experiment E9 measures exactly this
/// adjustment count; the engine itself settles dirty nodes in increasing π
/// order, so each recolored node is final when popped.
///
/// # Example
///
/// ```
/// use dmis_derived::{verify, ColoringEngine};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::cycle(7);
/// let mut ce = ColoringEngine::from_graph(g, 4);
/// assert!(verify::is_proper_coloring(ce.graph(), &ce.colors()));
/// ce.remove_edge(ids[0], ids[1])?;
/// assert!(verify::is_proper_coloring(ce.graph(), &ce.colors()));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ColoringEngine {
    graph: DynGraph,
    priorities: PriorityMap,
    /// Dense per-node color table.
    color: NodeMap<usize>,
    /// Dense ranks realizing π, consumed by the rank-front settle drain.
    ranks: RankIndex,
    /// Persistent word-parallel dirty queue (empty between updates).
    front: RankFront,
    /// Which dirty-queue realization [`Self::propagate`] drains.
    strategy: SettleStrategy,
    rng: StdRng,
}

impl ColoringEngine {
    /// Creates an engine over an existing graph with fresh random
    /// priorities.
    #[must_use]
    pub fn from_graph(graph: DynGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priorities = PriorityMap::new();
        for v in graph.nodes() {
            priorities.assign(v, &mut rng);
        }
        Self::from_parts_inner(graph, priorities, rng)
    }

    /// Creates an engine with prescribed priorities (tests, adversarial
    /// orders).
    ///
    /// # Panics
    ///
    /// Panics if some node has no priority.
    #[must_use]
    pub fn from_parts(graph: DynGraph, priorities: PriorityMap, seed: u64) -> Self {
        Self::from_parts_inner(graph, priorities, StdRng::seed_from_u64(seed))
    }

    fn from_parts_inner(graph: DynGraph, priorities: PriorityMap, rng: StdRng) -> Self {
        let coloring = dmis_core::static_greedy::greedy_coloring(&graph, &priorities);
        let ranks = RankIndex::from_priorities(&priorities);
        let front = RankFront::with_capacity(ranks.span());
        ColoringEngine {
            graph,
            priorities,
            color: coloring.into_iter().collect(),
            ranks,
            front,
            strategy: SettleStrategy::default(),
            rng,
        }
    }

    /// Which dirty-queue realization the settle loop drains.
    #[must_use]
    pub fn settle_strategy(&self) -> SettleStrategy {
        self.strategy
    }

    /// Selects the dirty-queue realization. Purely a
    /// performance/verification knob: receipts and colors are
    /// bit-identical for both settings (both drains recolor in
    /// increasing π), which the strategy-equivalence test pins.
    pub fn set_settle_strategy(&mut self, strategy: SettleStrategy) {
        self.strategy = strategy;
    }

    /// The current graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The random order π.
    #[must_use]
    pub fn priorities(&self) -> &PriorityMap {
        &self.priorities
    }

    /// The current coloring.
    #[must_use]
    pub fn colors(&self) -> BTreeMap<NodeId, usize> {
        self.color.iter().map(|(id, &c)| (id, c)).collect()
    }

    /// The color of `v`, if it exists.
    #[must_use]
    pub fn color_of(&self, v: NodeId) -> Option<usize> {
        self.color.get(v).copied()
    }

    /// Number of distinct colors in use.
    #[must_use]
    pub fn palette_size(&self) -> usize {
        self.color.values().copied().collect::<BTreeSet<_>>().len()
    }

    fn mex_of_lower(&self, v: NodeId) -> usize {
        let used: BTreeSet<usize> = self
            .graph
            .neighbors(v)
            .expect("live node")
            .filter(|&u| self.priorities.before(u, v))
            .filter_map(|u| self.color.get(u).copied())
            .collect();
        (0..).find(|c| !used.contains(c)).expect("mex exists")
    }

    /// Settles dirty nodes in increasing π order; both drains recolor
    /// the identical sequence (a recolored node's final color is decided
    /// at its first pop, because every lower-π recolor precedes it), so
    /// the receipt is bit-identical either way.
    fn propagate(&mut self, seeds: Vec<NodeId>) -> ColoringReceipt {
        // One coalesced re-rank covers any node this update inserted out
        // of π order — same cadence as the MIS engines, and for the same
        // reason: it bounds the pending list so `RankIndex::remove` stays
        // O(update) no matter which strategy is active.
        self.ranks.flush(&self.priorities);
        let receipt = match self.strategy {
            SettleStrategy::RankFront => self.propagate_front(seeds),
            SettleStrategy::BinaryHeap => self.propagate_heap(seeds),
        };
        // Post-drain, no rank is parked in the front: safe to compact
        // tombstone mass so the rank span tracks the live node count.
        self.ranks.maybe_compact();
        receipt
    }

    /// The word-parallel drain: dirty ranks live in the persistent
    /// [`RankFront`] (set semantics — duplicate pushes merge), pops are
    /// whole-word bit scans, and the neighbor filter compares dense
    /// `u32` ranks.
    fn propagate_front(&mut self, seeds: Vec<NodeId>) -> ColoringReceipt {
        debug_assert!(self.front.is_empty(), "settle front leaked ranks");
        for v in seeds {
            // All seeds are live here: the coloring engine has no batch
            // API, so no seed can refer to a node a later change deleted.
            self.front.insert(self.ranks.rank_of(v));
        }
        let mut recolored = Vec::new();
        while let Some(rank) = self.front.pop_min() {
            let v = self.ranks.node_at(rank);
            let desired = self.mex_of_lower(v);
            if self.color.get(v) == Some(&desired) {
                continue;
            }
            self.color.insert(v, desired);
            recolored.push((v, desired));
            let graph = &self.graph;
            let ranks = &self.ranks;
            let front = &mut self.front;
            for chunk in graph.neighbor_chunks(v).expect("live node") {
                for &w in chunk {
                    let rw = ranks.rank_of(w);
                    if rw > rank {
                        front.insert(rw);
                    }
                }
            }
        }
        ColoringReceipt { recolored }
    }

    /// The retained heap drain — the pre-front settle loop, kept as the
    /// bitwise reference (duplicates pushed and skipped on re-pop).
    fn propagate_heap(&mut self, seeds: Vec<NodeId>) -> ColoringReceipt {
        let mut heap: BinaryHeap<Reverse<(Priority, NodeId)>> = seeds
            .into_iter()
            .map(|v| Reverse((self.priorities.of(v), v)))
            .collect();
        let mut recolored = Vec::new();
        while let Some(Reverse((prio, v))) = heap.pop() {
            let desired = self.mex_of_lower(v);
            if self.color.get(v) == Some(&desired) {
                continue;
            }
            self.color.insert(v, desired);
            recolored.push((v, desired));
            let higher: Vec<NodeId> = self
                .graph
                .neighbors(v)
                .expect("live node")
                .filter(|&w| self.priorities.of(w) > prio)
                .collect();
            for w in higher {
                heap.push(Reverse((self.priorities.of(w), w)));
            }
        }
        ColoringReceipt { recolored }
    }

    /// Inserts an edge and restores the first-fit invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the engine is unchanged.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<ColoringReceipt, GraphError> {
        self.graph.insert_edge(u, v)?;
        let hi = if self.priorities.before(u, v) { v } else { u };
        Ok(self.propagate(vec![hi]))
    }

    /// Removes an edge and restores the first-fit invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the engine is unchanged.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<ColoringReceipt, GraphError> {
        self.graph.remove_edge(u, v)?;
        let hi = if self.priorities.before(u, v) { v } else { u };
        Ok(self.propagate(vec![hi]))
    }

    /// Inserts a node with a fresh random priority.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the engine is unchanged.
    pub fn insert_node<I>(&mut self, neighbors: I) -> Result<(NodeId, ColoringReceipt), GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let v = self.graph.add_node_with_edges(neighbors)?;
        let key = self.rng.random();
        self.priorities.insert(v, Priority::new(key, v));
        self.ranks.insert(v, &self.priorities);
        // Sentinel forces the propagation to assign a real color.
        self.color.insert(v, usize::MAX);
        let receipt = self.propagate(vec![v]);
        Ok((v, receipt))
    }

    /// Removes a node.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the node does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<ColoringReceipt, GraphError> {
        let prio_v = self.priorities.get(v).ok_or(GraphError::MissingNode(v))?;
        let nbrs = self.graph.remove_node(v)?;
        self.priorities.remove(v);
        self.ranks.remove(v);
        self.color.remove(v);
        let seeds: Vec<NodeId> = nbrs
            .into_iter()
            .filter(|&w| self.priorities.of(w) > prio_v)
            .collect();
        Ok(self.propagate(seeds))
    }

    /// Applies a described change.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; stale insertion identifiers are rejected.
    pub fn apply(&mut self, change: &TopologyChange) -> Result<ColoringReceipt, GraphError> {
        match change {
            TopologyChange::InsertEdge(u, v) => self.insert_edge(*u, *v),
            TopologyChange::DeleteEdge(u, v) => self.remove_edge(*u, *v),
            TopologyChange::InsertNode { id, edges } => {
                if self.graph.peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                self.insert_node(edges.iter().copied()).map(|(_, r)| r)
            }
            TopologyChange::DeleteNode(v) => self.remove_node(*v),
        }
    }

    /// Verifies the coloring against a from-scratch recomputation (history
    /// independence at fixed π) and properness.
    ///
    /// # Panics
    ///
    /// Panics on divergence.
    pub fn assert_consistent(&self) {
        self.ranks.assert_consistent(&self.priorities);
        assert!(self.front.is_empty(), "settle front leaked ranks");
        let fresh: NodeMap<usize> =
            dmis_core::static_greedy::greedy_coloring(&self.graph, &self.priorities)
                .into_iter()
                .collect();
        assert_eq!(self.color, fresh, "coloring diverged from static greedy");
        assert!(
            crate::verify::is_proper_coloring(&self.graph, &self.colors()),
            "coloring is not proper"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};

    #[test]
    fn initial_coloring_is_greedy() {
        let mut rng = StdRng::seed_from_u64(0);
        let (g, _) = generators::erdos_renyi(20, 0.25, &mut rng);
        let ce = ColoringEngine::from_graph(g, 3);
        ce.assert_consistent();
        assert!(ce.palette_size() <= ce.graph().max_degree() + 1);
    }

    #[test]
    fn churn_preserves_greedy_coloring() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(14, 0.3, &mut rng);
        let mut ce = ColoringEngine::from_graph(g, 9);
        for _ in 0..250 {
            let Some(change) = stream::random_change(ce.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            ce.apply(&change).unwrap();
            ce.assert_consistent();
        }
    }

    #[test]
    fn recoloring_cascade_on_ordered_path() {
        // Path with increasing priorities: colors alternate 0,1,0,1,…
        let (g, ids) = generators::path(6);
        let pm = PriorityMap::from_order(&ids);
        let mut ce = ColoringEngine::from_parts(g, pm, 0);
        assert_eq!(ce.color_of(ids[0]), Some(0));
        assert_eq!(ce.color_of(ids[1]), Some(1));
        // Deleting the first edge shifts the whole parity: Θ(n) recolors —
        // the O(Δ)-or-worse adjustment behavior the paper warns about.
        let receipt = ce.remove_edge(ids[0], ids[1]).unwrap();
        assert_eq!(receipt.adjustments(), 5);
        ce.assert_consistent();
    }

    #[test]
    fn node_churn() {
        let (g, ids) = generators::cycle(5);
        let mut ce = ColoringEngine::from_graph(g, 2);
        let (v, _) = ce.insert_node(vec![ids[0], ids[2]]).unwrap();
        ce.assert_consistent();
        ce.remove_node(v).unwrap();
        ce.assert_consistent();
        ce.remove_node(ids[0]).unwrap();
        ce.assert_consistent();
    }

    #[test]
    fn bipartite_minus_matching_two_colors_with_good_order() {
        // Put one left node first, then a non-matched right node: random
        // greedy 2-colors the graph (Example 3's high-probability event).
        let k = 5;
        let (g, left, right) = generators::bipartite_minus_matching(k);
        let mut order = vec![left[0], right[1]];
        order.extend(left[1..].iter().copied());
        order.extend(
            right
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != 1)
                .map(|(_, &v)| v),
        );
        let ce = ColoringEngine::from_parts(g, PriorityMap::from_order(&order), 0);
        assert_eq!(ce.palette_size(), 2);
        ce.assert_consistent();
    }

    #[test]
    fn front_and_heap_strategies_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(31);
        let (g, _) = generators::erdos_renyi(16, 0.3, &mut rng);
        let mut front = ColoringEngine::from_graph(g.clone(), 6);
        let mut heap = ColoringEngine::from_graph(g, 6);
        heap.set_settle_strategy(SettleStrategy::BinaryHeap);
        assert_eq!(front.settle_strategy(), SettleStrategy::RankFront);
        for step in 0..300 {
            let Some(change) =
                stream::random_change(front.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let rf = front.apply(&change).unwrap();
            let rh = heap.apply(&change).unwrap();
            assert_eq!(rf, rh, "step {step}: receipts diverged");
            assert_eq!(front.colors(), heap.colors(), "step {step}");
            if step % 60 == 0 {
                front.assert_consistent();
                heap.assert_consistent();
            }
        }
        front.assert_consistent();
        heap.assert_consistent();
    }

    #[test]
    fn stale_insert_id_rejected() {
        let (g, _) = generators::path(2);
        let mut ce = ColoringEngine::from_graph(g, 0);
        assert!(ce
            .apply(&TopologyChange::InsertNode {
                id: NodeId(0),
                edges: vec![]
            })
            .is_err());
    }
}
