//! Checkers for the derived structures.

use std::collections::{BTreeMap, BTreeSet};

use dmis_graph::{DynGraph, EdgeKey, NodeId};

/// Returns `true` if `matching` is a matching of `g` (edges exist, no two
/// share an endpoint).
#[must_use]
pub fn is_matching(g: &DynGraph, matching: &BTreeSet<EdgeKey>) -> bool {
    let mut used: BTreeSet<NodeId> = BTreeSet::new();
    for &e in matching {
        let (u, v) = e.endpoints();
        if !g.has_edge(u, v) {
            return false;
        }
        if !used.insert(u) || !used.insert(v) {
            return false;
        }
    }
    true
}

/// Returns `true` if `matching` is a **maximal** matching of `g`: a
/// matching such that every edge of `g` touches a matched node.
#[must_use]
pub fn is_maximal_matching(g: &DynGraph, matching: &BTreeSet<EdgeKey>) -> bool {
    if !is_matching(g, matching) {
        return false;
    }
    let mut matched: BTreeSet<NodeId> = BTreeSet::new();
    for &e in matching {
        let (u, v) = e.endpoints();
        matched.insert(u);
        matched.insert(v);
    }
    g.edges().all(|e| {
        let (u, v) = e.endpoints();
        matched.contains(&u) || matched.contains(&v)
    })
}

/// Returns `true` if `colors` is a proper coloring of `g` covering every
/// node.
#[must_use]
pub fn is_proper_coloring(g: &DynGraph, colors: &BTreeMap<NodeId, usize>) -> bool {
    if g.nodes().any(|v| !colors.contains_key(&v)) {
        return false;
    }
    g.edges().all(|e| {
        let (u, v) = e.endpoints();
        colors[&u] != colors[&v]
    })
}

/// Number of distinct colors used.
#[must_use]
pub fn palette_size(colors: &BTreeMap<NodeId, usize>) -> usize {
    colors.values().copied().collect::<BTreeSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    #[test]
    fn matching_checks() {
        let (g, ids) = generators::path(4);
        let good: BTreeSet<EdgeKey> = [EdgeKey::new(ids[0], ids[1])].into_iter().collect();
        assert!(is_matching(&g, &good));
        assert!(!is_maximal_matching(&g, &good), "edge {{p2,p3}} uncovered");
        let maximal: BTreeSet<EdgeKey> =
            [EdgeKey::new(ids[0], ids[1]), EdgeKey::new(ids[2], ids[3])]
                .into_iter()
                .collect();
        assert!(is_maximal_matching(&g, &maximal));
        let overlapping: BTreeSet<EdgeKey> =
            [EdgeKey::new(ids[0], ids[1]), EdgeKey::new(ids[1], ids[2])]
                .into_iter()
                .collect();
        assert!(!is_matching(&g, &overlapping));
        let ghost: BTreeSet<EdgeKey> = [EdgeKey::new(ids[0], ids[3])].into_iter().collect();
        assert!(!is_matching(&g, &ghost), "edge must exist");
    }

    #[test]
    fn coloring_checks() {
        let (g, ids) = generators::cycle(4);
        let proper: BTreeMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &v)| (v, i % 2)).collect();
        assert!(is_proper_coloring(&g, &proper));
        assert_eq!(palette_size(&proper), 2);
        let monochrome: BTreeMap<NodeId, usize> = ids.iter().map(|&v| (v, 0)).collect();
        assert!(!is_proper_coloring(&g, &monochrome));
        let partial: BTreeMap<NodeId, usize> = [(ids[0], 0)].into_iter().collect();
        assert!(!is_proper_coloring(&g, &partial), "must cover all nodes");
    }
}
