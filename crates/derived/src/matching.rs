use std::collections::BTreeSet;

use dmis_core::{DynamicMis, MisEngine, UpdateReceipt};
use dmis_graph::{DynGraph, EdgeKey, GraphError, LineGraphMirror, NodeId};

/// History-independent dynamic **maximal matching**, maintained by
/// simulating the random-greedy MIS engine on the line graph of the base
/// graph (the standard reduction of Section 5).
///
/// A single base-graph change translates into a short sequence of
/// line-graph changes (one node insertion per new edge, `deg` node
/// deletions for a node removal); each is fed to the engine, so Theorem 1
/// applies per line-graph change and the expected number of matching edges
/// that change per base edge-change is O(1).
///
/// # Example
///
/// ```
/// use dmis_derived::{verify, DynamicMatching};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::cycle(6);
/// let mut dm = DynamicMatching::new(g, 11);
/// assert!(verify::is_maximal_matching(dm.base_graph(), &dm.matching()));
/// dm.remove_edge(ids[0], ids[1])?;
/// assert!(verify::is_maximal_matching(dm.base_graph(), &dm.matching()));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicMatching {
    base: DynGraph,
    mirror: LineGraphMirror,
    engine: MisEngine,
}

impl DynamicMatching {
    /// Creates the structure over `graph`, drawing a random order over its
    /// *edges* (line-graph nodes) from `seed`.
    #[must_use]
    pub fn new(graph: DynGraph, seed: u64) -> Self {
        let mirror = LineGraphMirror::new(&graph);
        let engine = dmis_core::Engine::builder()
            .graph(mirror.line_graph().clone())
            .seed(seed)
            .build_unsharded();
        DynamicMatching {
            base: graph,
            mirror,
            engine,
        }
    }

    /// The base graph.
    #[must_use]
    pub fn base_graph(&self) -> &DynGraph {
        &self.base
    }

    /// The maintained line graph (engine view).
    #[must_use]
    pub fn line_graph(&self) -> &DynGraph {
        self.engine.graph()
    }

    /// The current maximal matching.
    #[must_use]
    pub fn matching(&self) -> BTreeSet<EdgeKey> {
        self.engine
            .mis_iter()
            .map(|ln| {
                self.mirror
                    .edge_of_node(ln)
                    .expect("MIS nodes map to live edges")
            })
            .collect()
    }

    /// Number of matched edges — the line-graph MIS size, no
    /// materialization.
    #[must_use]
    pub fn matching_len(&self) -> usize {
        self.engine.mis_len()
    }

    /// Returns `true` if the edge `{u, v}` is matched.
    #[must_use]
    pub fn is_matched(&self, u: NodeId, v: NodeId) -> bool {
        self.mirror
            .node_of_edge(u, v)
            .and_then(|ln| self.engine.is_in_mis(ln))
            .unwrap_or(false)
    }

    /// Inserts a base edge; returns the engine receipt for the induced
    /// line-graph node insertion.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the base-graph insertion.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        let change = self.mirror.apply_edge_insert(&mut self.base, u, v)?;
        self.engine.apply(&change).map_err(|e| self.desync(e))
    }

    /// Removes a base edge; returns the engine receipt for the induced
    /// line-graph node deletion.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the base-graph removal.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        let change = self.mirror.apply_edge_remove(&mut self.base, u, v)?;
        self.engine.apply(&change).map_err(|e| self.desync(e))
    }

    /// Inserts a base node with edges to `neighbors`; returns the new node
    /// and the receipts of the induced line-graph insertions (one per
    /// edge).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; partially applied neighbor lists are not
    /// rolled back (the structure stays consistent with the applied
    /// prefix).
    pub fn insert_node<I>(
        &mut self,
        neighbors: I,
    ) -> Result<(NodeId, Vec<UpdateReceipt>), GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let (v, changes) = self.mirror.apply_node_insert(&mut self.base, neighbors)?;
        let mut receipts = Vec::with_capacity(changes.len());
        for change in &changes {
            receipts.push(self.engine.apply(change).map_err(|e| self.desync(e))?);
        }
        Ok((v, receipts))
    }

    /// Removes a base node; returns the receipts of the induced line-graph
    /// deletions (one per former incident edge).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the node does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<UpdateReceipt>, GraphError> {
        let changes = self.mirror.apply_node_remove(&mut self.base, v)?;
        let mut receipts = Vec::with_capacity(changes.len());
        for change in &changes {
            receipts.push(self.engine.apply(change).map_err(|e| self.desync(e))?);
        }
        Ok(receipts)
    }

    fn desync(&self, e: GraphError) -> GraphError {
        // The mirror and engine apply the same deterministic id sequence; a
        // failure here means internal corruption, not a user error.
        unreachable!("line-graph mirror and engine desynchronized: {e}")
    }

    /// Verifies the full stack: mirror vs. base, engine vs. line graph, and
    /// matching maximality.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn assert_consistent(&self) {
        self.mirror.assert_matches(&self.base);
        self.engine.assert_internally_consistent();
        assert!(
            crate::verify::is_maximal_matching(&self.base, &self.matching()),
            "matching is not maximal"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn initial_matching_is_maximal() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 5, 12, 25] {
            let (g, _) = generators::erdos_renyi(n, 0.3, &mut rng);
            let dm = DynamicMatching::new(g, n as u64);
            dm.assert_consistent();
        }
    }

    #[test]
    fn single_edge_graph_matches_it() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        g.insert_edge(ids[0], ids[1]).unwrap();
        let dm = DynamicMatching::new(g, 0);
        assert!(dm.is_matched(ids[0], ids[1]));
        assert_eq!(dm.matching().len(), 1);
    }

    #[test]
    fn churn_keeps_matching_maximal() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = generators::erdos_renyi(10, 0.3, &mut rng);
        let mut dm = DynamicMatching::new(g, 5);
        for _ in 0..150 {
            let roll: f64 = rng.random();
            if roll < 0.35 {
                if let Some((u, v)) = generators::random_non_edge(dm.base_graph(), &mut rng) {
                    dm.insert_edge(u, v).unwrap();
                }
            } else if roll < 0.7 {
                if let Some((u, v)) = generators::random_edge(dm.base_graph(), &mut rng) {
                    dm.remove_edge(u, v).unwrap();
                }
            } else if roll < 0.85 {
                let nodes: Vec<NodeId> = dm.base_graph().nodes().collect();
                let deg = rng.random_range(0..=nodes.len().min(3));
                let mut pool = nodes;
                let mut nbrs = Vec::new();
                for _ in 0..deg {
                    let i = rng.random_range(0..pool.len());
                    nbrs.push(pool.swap_remove(i));
                }
                dm.insert_node(nbrs).unwrap();
            } else if let Some(v) = generators::random_node(dm.base_graph(), &mut rng) {
                dm.remove_node(v).unwrap();
            }
            dm.assert_consistent();
        }
    }

    #[test]
    fn three_path_matching_sizes() {
        // On a single 3-edge path the matching has size 1 or 2; over many
        // seeds the average should approach 5/3 (Section 5, Example 2).
        let mut total = 0usize;
        let trials = 600u64;
        for seed in 0..trials {
            let (g, _) = generators::disjoint_three_paths(1);
            let dm = DynamicMatching::new(g, seed);
            let m = dm.matching().len();
            assert!(m == 1 || m == 2);
            total += m;
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - 5.0 / 3.0).abs() < 0.12,
            "mean matching size {mean} should be ≈ 5/3"
        );
    }

    #[test]
    fn receipts_count_matching_changes() {
        let (g, ids) = generators::path(3);
        let mut dm = DynamicMatching::new(g, 2);
        let before = dm.matching();
        let receipt = dm.remove_edge(ids[0], ids[1]).unwrap();
        let after = dm.matching();
        let _ = (before, after);
        // The line-graph deletion receipt reports surviving line nodes that
        // flipped.
        assert!(receipt.adjustments() <= 1);
    }
}
