use std::collections::BTreeMap;

use dmis_core::{DynamicMis, MisEngine};
use dmis_graph::{CliqueBlowup, DynGraph, GraphError, NodeId};

/// (Δ+1)-coloring via the **clique blow-up** reduction (Section 5 of the
/// paper, after [Luby 1986]): every node of `G` becomes a clique of
/// `palette` copies in `G'`, every edge a perfect matching between cliques.
/// The MIS of `G'` selects exactly one copy per node, and the copy's index
/// is a proper coloring of `G`.
///
/// Maintained dynamically: each base-graph change is mirrored as a sequence
/// of blow-up changes fed to the MIS engine. A single base change maps to
/// `O(palette)` blow-up changes, so by Theorem 1 the expected number of
/// blow-up adjustments is `O(palette)` = `O(Δ)` — matching the paper's
/// observation that the reduction costs `O(Δ)` adjustments, not `O(1)`.
///
/// The degree cap `palette − 1` must hold throughout the execution.
///
/// # Example
///
/// ```
/// use dmis_derived::{verify, BlowupColoring};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::cycle(6); // Δ = 2
/// let mut bc = BlowupColoring::new(g, 3, 1);
/// assert!(verify::is_proper_coloring(bc.base_graph(), &bc.colors()));
/// bc.remove_edge(ids[0], ids[1])?;
/// assert!(verify::is_proper_coloring(bc.base_graph(), &bc.colors()));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlowupColoring {
    base: DynGraph,
    blowup: CliqueBlowup,
    engine: MisEngine,
}

impl BlowupColoring {
    /// Creates the structure over `graph` with the given palette size
    /// (color budget; must exceed the maximum degree ever reached).
    ///
    /// # Panics
    ///
    /// Panics if `palette ≤ Δ(graph)`.
    #[must_use]
    pub fn new(graph: DynGraph, palette: usize, seed: u64) -> Self {
        let blowup = CliqueBlowup::new(&graph, palette);
        let engine = dmis_core::Engine::builder()
            .graph(blowup.blown_graph().clone())
            .seed(seed)
            .build_unsharded();
        BlowupColoring {
            base: graph,
            blowup,
            engine,
        }
    }

    /// The base graph.
    #[must_use]
    pub fn base_graph(&self) -> &DynGraph {
        &self.base
    }

    /// The palette size.
    #[must_use]
    pub fn palette(&self) -> usize {
        self.blowup.palette()
    }

    /// The current coloring: for every base node, the index of its MIS
    /// copy.
    ///
    /// # Panics
    ///
    /// Panics if some clique has no MIS copy — impossible while the degree
    /// cap holds.
    #[must_use]
    pub fn colors(&self) -> BTreeMap<NodeId, usize> {
        self.base
            .nodes()
            .map(|v| {
                let copies = self.blowup.copies_of(v).expect("clique exists");
                let color = copies
                    .iter()
                    .position(|&c| self.engine.is_in_mis(c).unwrap_or(false))
                    .expect("pigeonhole: one copy per clique is in the MIS");
                (v, color)
            })
            .collect()
    }

    /// Inserts a base edge (mirrored as `palette` matching-edge
    /// insertions).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]. Panics if the insertion would push an
    /// endpoint's degree to the palette size (degree cap).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.base.insert_edge(u, v)?;
        assert!(
            self.base.degree(u).expect("live") < self.palette()
                && self.base.degree(v).expect("live") < self.palette(),
            "degree cap {} exceeded",
            self.palette() - 1
        );
        self.blowup.insert_base_edge(u, v)?;
        self.mirror_edges(u, v, true)
    }

    /// Removes a base edge.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`].
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.base.remove_edge(u, v)?;
        self.blowup.remove_base_edge(u, v)?;
        self.mirror_edges(u, v, false)
    }

    fn mirror_edges(&mut self, u: NodeId, v: NodeId, insert: bool) -> Result<(), GraphError> {
        let cu = self.blowup.copies_of(u).expect("clique exists").to_vec();
        let cv = self.blowup.copies_of(v).expect("clique exists").to_vec();
        for (a, b) in cu.into_iter().zip(cv) {
            if insert {
                self.engine.insert_edge(a, b)?;
            } else {
                self.engine.remove_edge(a, b)?;
            }
        }
        Ok(())
    }

    /// Inserts a base node with edges to `neighbors` (mirrored as a clique
    /// plus matchings).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`].
    pub fn insert_node(&mut self, neighbors: &[NodeId]) -> Result<NodeId, GraphError> {
        assert!(
            neighbors.len() < self.palette(),
            "degree cap {} exceeded at insertion",
            self.palette() - 1
        );
        let v = self.base.add_node_with_edges(neighbors.iter().copied())?;
        self.blowup.insert_base_node(v, neighbors)?;
        // Mirror into the engine: clique copies one by one, then matchings.
        let copies = self.blowup.copies_of(v).expect("just created").to_vec();
        for (i, &copy) in copies.iter().enumerate() {
            let (got, _) = self.engine.insert_node(&copies[..i])?;
            debug_assert_eq!(got, copy, "engine and blow-up id streams agree");
        }
        for &u in neighbors {
            self.mirror_edges(v, u, true)?;
        }
        Ok(v)
    }

    /// Removes a base node (mirrored as `palette` copy deletions).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the node does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        let copies = self
            .blowup
            .copies_of(v)
            .ok_or(GraphError::MissingNode(v))?
            .to_vec();
        self.base.remove_node(v)?;
        self.blowup.remove_base_node(v)?;
        for copy in copies {
            self.engine.remove_node(copy)?;
        }
        Ok(())
    }

    /// Verifies properness of the extracted coloring and internal engine
    /// consistency.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn assert_consistent(&self) {
        self.engine.assert_internally_consistent();
        assert!(
            crate::verify::is_proper_coloring(&self.base, &self.colors()),
            "blow-up coloring is not proper"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn initial_coloring_is_proper() {
        let (g, _) = generators::cycle(8); // Δ = 2
        let bc = BlowupColoring::new(g, 3, 0);
        bc.assert_consistent();
        let colors = bc.colors();
        assert!(colors.values().all(|&c| c < 3));
    }

    #[test]
    fn edge_churn_stays_proper() {
        let mut rng = StdRng::seed_from_u64(5);
        // Sparse graph with degree cap 4, palette 5.
        let (g, ids) = generators::cycle(8);
        let mut bc = BlowupColoring::new(g, 5, 1);
        for _ in 0..60 {
            if rng.random_bool(0.5) {
                if let Some((u, v)) = generators::random_non_edge(bc.base_graph(), &mut rng) {
                    if bc.base_graph().degree(u).unwrap() < 4
                        && bc.base_graph().degree(v).unwrap() < 4
                    {
                        bc.insert_edge(u, v).unwrap();
                    }
                }
            } else if let Some((u, v)) = generators::random_edge(bc.base_graph(), &mut rng) {
                bc.remove_edge(u, v).unwrap();
            }
            bc.assert_consistent();
        }
        let _ = ids;
    }

    #[test]
    fn node_churn_stays_proper() {
        let (g, ids) = generators::path(4); // Δ = 2
        let mut bc = BlowupColoring::new(g, 4, 2);
        let v = bc.insert_node(&[ids[0], ids[3]]).unwrap();
        bc.assert_consistent();
        bc.remove_node(v).unwrap();
        bc.assert_consistent();
        bc.remove_node(ids[1]).unwrap();
        bc.assert_consistent();
    }

    #[test]
    #[should_panic(expected = "degree cap")]
    fn degree_cap_is_enforced() {
        let (g, ids) = generators::path(3); // Δ = 2, palette 3
        let mut bc = BlowupColoring::new(g, 3, 0);
        // Raising deg(ids[1]) to 3 would break the reduction.
        let v = bc.insert_node(&[ids[0]]).unwrap();
        let _ = bc.insert_edge(v, ids[1]);
    }

    #[test]
    fn colors_agree_with_one_copy_per_clique() {
        let (g, _) = generators::complete(4); // Δ = 3, palette 4
        let bc = BlowupColoring::new(g, 4, 3);
        let colors = bc.colors();
        // K4 needs all 4 colors.
        let distinct: std::collections::BTreeSet<usize> = colors.values().copied().collect();
        assert_eq!(distinct.len(), 4);
    }
}
