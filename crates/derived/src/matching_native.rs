use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use dmis_graph::{DynGraph, EdgeKey, GraphError, NodeId, NodeMap, NodeSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A matched/unmatched flip of one edge, reported by
/// [`NativeMatching`] receipts.
pub type EdgeFlip = (EdgeKey, bool);

/// Outcome of one native-matching update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingReceipt {
    /// Edges whose matched-status changed, in settlement order, with the
    /// new status.
    pub flips: Vec<EdgeFlip>,
}

impl MatchingReceipt {
    /// Number of edges whose matched-status changed — the matching
    /// adjustment complexity of this change (expected O(1) per base-graph
    /// edge change, by Theorem 1 applied to the line graph).
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.flips.len()
    }
}

/// Dynamic maximal matching implemented **natively over edges** — the same
/// random-greedy process as [`crate::DynamicMatching`] (which simulates the
/// MIS engine on an explicitly materialized line graph), but without ever
/// building `L(G)`: each edge draws a random priority at insertion, and an
/// edge is matched iff no incident edge of lower priority is matched.
///
/// Functionally the two are interchangeable — a differential test drives
/// both with identical priorities and checks they produce the same
/// matching — but the native engine stores `O(n + m)` state instead of the
/// line graph's `O(m + Σ deg²)` adjacency, which matters on dense graphs.
///
/// # Example
///
/// ```
/// use dmis_derived::{verify, NativeMatching};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::cycle(8);
/// let mut nm = NativeMatching::new(g, 9);
/// assert!(verify::is_maximal_matching(nm.graph(), &nm.matching()));
/// nm.remove_edge(ids[0], ids[1])?;
/// assert!(verify::is_maximal_matching(nm.graph(), &nm.matching()));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NativeMatching {
    graph: DynGraph,
    /// Random key per live edge (tie-break by the edge key itself).
    keys: BTreeMap<EdgeKey, u64>,
    matched: BTreeSet<EdgeKey>,
    /// Per node: the matched edge covering it, if any. An edge is matched
    /// iff both its endpoints point at it; this doubles as the
    /// lower-matched-neighbor oracle.
    cover: NodeMap<EdgeKey>,
    rng: StdRng,
}

impl NativeMatching {
    /// Creates the structure over `graph`, drawing a random priority per
    /// edge from `seed` and computing the initial greedy matching.
    #[must_use]
    pub fn new(graph: DynGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nm = NativeMatching {
            graph: DynGraph::new(),
            keys: BTreeMap::new(),
            matched: BTreeSet::new(),
            cover: NodeMap::new(),
            rng,
        };
        // Rebuild through the incremental path so the invariant machinery
        // is exercised uniformly.
        let mut id_map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for v in graph.nodes() {
            id_map.insert(v, nm.graph.add_node());
        }
        debug_assert!(graph.nodes().all(|v| id_map[&v] == v), "fresh ids align");
        rng = StdRng::seed_from_u64(seed);
        nm.rng = rng;
        for key in graph.edges() {
            let (u, v) = key.endpoints();
            nm.insert_edge(u, v).expect("valid source graph");
        }
        nm
    }

    /// The base graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current maximal matching.
    #[must_use]
    pub fn matching(&self) -> BTreeSet<EdgeKey> {
        self.matched.clone()
    }

    /// Returns `true` if the edge `{u, v}` is currently matched.
    #[must_use]
    pub fn is_matched(&self, u: NodeId, v: NodeId) -> bool {
        self.matched.contains(&EdgeKey::new(u, v))
    }

    fn priority_of(&self, e: EdgeKey) -> (u64, EdgeKey) {
        (self.keys[&e], e)
    }

    /// An edge wants to be matched iff neither endpoint is covered by a
    /// matched edge of lower priority.
    fn desired(&self, e: EdgeKey) -> bool {
        let (u, v) = e.endpoints();
        for endpoint in [u, v] {
            if let Some(&cov) = self.cover.get(endpoint) {
                if cov != e && self.priority_of(cov) < self.priority_of(e) {
                    return false;
                }
            }
        }
        true
    }

    /// Incident live edges of `e` (sharing an endpoint).
    fn incident(&self, e: EdgeKey) -> Vec<EdgeKey> {
        let (u, v) = e.endpoints();
        let mut out = Vec::new();
        for endpoint in [u, v] {
            if let Some(nbrs) = self.graph.neighbors(endpoint) {
                for w in nbrs {
                    let k = EdgeKey::new(endpoint, w);
                    if k != e {
                        out.push(k);
                    }
                }
            }
        }
        out
    }

    /// Settles dirty edges in increasing priority order — the edge-level
    /// image of the MIS engine's propagation.
    fn propagate(&mut self, seeds: Vec<EdgeKey>) -> MatchingReceipt {
        let mut heap: BinaryHeap<Reverse<((u64, EdgeKey), EdgeKey)>> = seeds
            .into_iter()
            .filter(|e| self.keys.contains_key(e))
            .map(|e| Reverse((self.priority_of(e), e)))
            .collect();
        let mut flips = Vec::new();
        while let Some(Reverse((prio, e))) = heap.pop() {
            if !self.keys.contains_key(&e) {
                continue; // edge vanished mid-batch
            }
            let desired = self.desired(e);
            let current = self.matched.contains(&e);
            if desired == current {
                continue;
            }
            let (u, v) = e.endpoints();
            if desired {
                self.matched.insert(e);
                self.cover.insert(u, e);
                self.cover.insert(v, e);
            } else {
                self.matched.remove(&e);
                for endpoint in [u, v] {
                    if self.cover.get(endpoint) == Some(&e) {
                        self.cover.remove(endpoint);
                    }
                }
            }
            flips.push((e, desired));
            for other in self.incident(e) {
                if self.priority_of(other) > prio {
                    heap.push(Reverse((self.priority_of(other), other)));
                }
            }
        }
        MatchingReceipt { flips }
    }

    /// Adds an isolated node.
    pub fn add_node(&mut self) -> NodeId {
        self.graph.add_node()
    }

    /// Inserts a base edge, drawing its random priority, and restores the
    /// matching invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the structure is unchanged.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<MatchingReceipt, GraphError> {
        let key = self.rng.random();
        self.insert_edge_with_key(u, v, key)
    }

    /// Inserts an edge with a prescribed key (for differential tests that
    /// need identical priorities across implementations).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the structure is unchanged.
    pub fn insert_edge_with_key(
        &mut self,
        u: NodeId,
        v: NodeId,
        key: u64,
    ) -> Result<MatchingReceipt, GraphError> {
        self.graph.insert_edge(u, v)?;
        let e = EdgeKey::new(u, v);
        self.keys.insert(e, key);
        Ok(self.propagate(vec![e]))
    }

    /// Removes a base edge and restores the matching invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the structure is unchanged.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<MatchingReceipt, GraphError> {
        self.graph.remove_edge(u, v)?;
        let e = EdgeKey::new(u, v);
        self.keys.remove(&e);
        let was_matched = self.matched.remove(&e);
        let mut seeds = Vec::new();
        if was_matched {
            for endpoint in [u, v] {
                if self.cover.get(endpoint) == Some(&e) {
                    self.cover.remove(endpoint);
                }
            }
            seeds.extend(self.incident(e));
            // incident() no longer sees e; seed the incident edges of both
            // endpoints, which may now be matchable.
            for endpoint in [u, v] {
                if let Some(nbrs) = self.graph.neighbors(endpoint) {
                    for w in nbrs {
                        seeds.push(EdgeKey::new(endpoint, w));
                    }
                }
            }
        }
        Ok(self.propagate(seeds))
    }

    /// Removes a node and all incident edges.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the node does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<MatchingReceipt, GraphError> {
        let nbrs = self.graph.neighbors_vec(v)?;
        let mut all_flips = Vec::new();
        for u in nbrs {
            let receipt = self.remove_edge(v, u)?;
            all_flips.extend(receipt.flips);
        }
        self.graph.remove_node(v)?;
        self.cover.remove(v);
        Ok(MatchingReceipt { flips: all_flips })
    }

    /// Verifies the maintained matching against a from-scratch greedy
    /// recomputation with the same edge priorities, plus maximality.
    ///
    /// # Panics
    ///
    /// Panics on divergence.
    pub fn assert_consistent(&self) {
        // From-scratch greedy: edges by increasing (key, edge).
        let mut order: Vec<EdgeKey> = self.keys.keys().copied().collect();
        order.sort_unstable_by_key(|&e| self.priority_of(e));
        let mut truth: BTreeSet<EdgeKey> = BTreeSet::new();
        let mut covered = NodeSet::new();
        for e in order {
            let (u, v) = e.endpoints();
            if !covered.contains(u) && !covered.contains(v) {
                truth.insert(e);
                covered.insert(u);
                covered.insert(v);
            }
        }
        assert_eq!(self.matched, truth, "matching diverged from greedy");
        assert!(
            crate::verify::is_maximal_matching(&self.graph, &self.matched),
            "matching is not maximal"
        );
        // Cover map agrees with the matched set.
        for &e in &self.matched {
            let (u, v) = e.endpoints();
            assert_eq!(self.cover.get(u), Some(&e));
            assert_eq!(self.cover.get(v), Some(&e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    #[test]
    fn initial_matching_is_greedy_and_maximal() {
        let mut rng = StdRng::seed_from_u64(0);
        for n in [2usize, 6, 15, 30] {
            let (g, _) = generators::erdos_renyi(n, 0.3, &mut rng);
            let nm = NativeMatching::new(g, n as u64);
            nm.assert_consistent();
        }
    }

    #[test]
    fn single_edge_is_matched() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        g.insert_edge(ids[0], ids[1]).unwrap();
        let nm = NativeMatching::new(g, 1);
        assert!(nm.is_matched(ids[0], ids[1]));
    }

    #[test]
    fn removing_matched_edge_promotes_alternative() {
        // Path p0-p1-p2-p3 with keys forcing {p0p1, p2p3}: remove p0p1 →
        // p1p2 becomes matchable → p2p3 unmatches... depends on keys; use
        // prescribed keys: p1p2 has the middle priority.
        let (mut g, ids) = DynGraph::with_nodes(4);
        g.insert_edge(ids[0], ids[1]).unwrap();
        g.insert_edge(ids[1], ids[2]).unwrap();
        g.insert_edge(ids[2], ids[3]).unwrap();
        let mut nm = NativeMatching {
            graph: DynGraph::new(),
            keys: BTreeMap::new(),
            matched: BTreeSet::new(),
            cover: NodeMap::new(),
            rng: StdRng::seed_from_u64(0),
        };
        for _ in 0..4 {
            nm.add_node();
        }
        nm.insert_edge_with_key(ids[0], ids[1], 10).unwrap();
        nm.insert_edge_with_key(ids[1], ids[2], 20).unwrap();
        nm.insert_edge_with_key(ids[2], ids[3], 30).unwrap();
        assert!(nm.is_matched(ids[0], ids[1]));
        assert!(nm.is_matched(ids[2], ids[3]));
        let receipt = nm.remove_edge(ids[0], ids[1]).unwrap();
        // p1p2 (key 20) now matchable; p2p3 (key 30) must unmatch.
        assert!(nm.is_matched(ids[1], ids[2]));
        assert!(!nm.is_matched(ids[2], ids[3]));
        assert_eq!(receipt.adjustments(), 2);
        nm.assert_consistent();
    }

    #[test]
    fn churn_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = generators::erdos_renyi(12, 0.3, &mut rng);
        let mut nm = NativeMatching::new(g, 7);
        for _ in 0..200 {
            if rng.random_bool(0.5) {
                if let Some((u, v)) = generators::random_non_edge(nm.graph(), &mut rng) {
                    nm.insert_edge(u, v).unwrap();
                }
            } else if let Some((u, v)) = generators::random_edge(nm.graph(), &mut rng) {
                nm.remove_edge(u, v).unwrap();
            }
            nm.assert_consistent();
        }
    }

    #[test]
    fn node_removal() {
        let (g, ids) = generators::star(5);
        let mut nm = NativeMatching::new(g, 3);
        nm.remove_node(ids[0]).unwrap();
        assert!(nm.matching().is_empty(), "no edges remain");
        nm.assert_consistent();
    }

    #[test]
    fn three_path_statistics_match_reduction() {
        // Native matching must reproduce the 5/3-per-path expectation.
        let trials = 600u64;
        let mut total = 0usize;
        for t in 0..trials {
            let (g, _) = generators::disjoint_three_paths(1);
            total += NativeMatching::new(g, t).matching().len();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 5.0 / 3.0).abs() < 0.12, "mean {mean} ≠ 5/3");
    }

    #[test]
    fn errors_leave_structure_unchanged() {
        let (g, ids) = generators::path(3);
        let mut nm = NativeMatching::new(g, 0);
        let snapshot = nm.matching();
        assert!(nm.insert_edge(ids[0], ids[1]).is_err());
        assert!(nm.remove_edge(ids[0], ids[2]).is_err());
        assert!(nm.remove_node(NodeId(99)).is_err());
        assert_eq!(nm.matching(), snapshot);
        nm.assert_consistent();
    }
}
