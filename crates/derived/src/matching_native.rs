use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use dmis_core::{Priority, PriorityMap, RankIndex, SettleStrategy};
use dmis_graph::{DynGraph, EdgeKey, GraphError, NodeId, NodeMap, NodeSet, RankFront};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense identifier of a live edge in the [`NativeMatching`] arena — the
/// edge's *line-graph id*: the node it would be in `L(G)`, without `L(G)`
/// ever being materialized. Freed ids are recycled (an edge's random
/// *key* is redrawn on every insertion, so recycling ids cannot leak
/// history), which keeps the arena — and the matched bitset over it —
/// as compact as the live edge set.
type LineId = NodeId;

/// A matched/unmatched flip of one edge, reported by
/// [`NativeMatching`] receipts.
pub type EdgeFlip = (EdgeKey, bool);

/// Outcome of one native-matching update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingReceipt {
    /// Edges whose matched-status changed, in settlement order, with the
    /// new status.
    pub flips: Vec<EdgeFlip>,
}

impl MatchingReceipt {
    /// Number of edges whose matched-status changed — the matching
    /// adjustment complexity of this change (expected O(1) per base-graph
    /// edge change, by Theorem 1 applied to the line graph).
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.flips.len()
    }
}

/// Dynamic maximal matching implemented **natively over edges** — the same
/// random-greedy process as [`crate::DynamicMatching`] (which simulates the
/// MIS engine on an explicitly materialized line graph), but without ever
/// building `L(G)`: each edge draws a random priority at insertion, and an
/// edge is matched iff no incident edge of lower priority is matched.
///
/// Functionally the two are interchangeable — a differential test drives
/// both with identical priorities and checks they produce the same
/// matching — but the native engine stores `O(n + m)` state instead of the
/// line graph's `O(m + Σ deg²)` adjacency, which matters on dense graphs.
///
/// # Example
///
/// ```
/// use dmis_derived::{verify, NativeMatching};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::cycle(8);
/// let mut nm = NativeMatching::new(g, 9);
/// assert!(verify::is_maximal_matching(nm.graph(), &nm.matching()));
/// nm.remove_edge(ids[0], ids[1])?;
/// assert!(verify::is_maximal_matching(nm.graph(), &nm.matching()));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NativeMatching {
    graph: DynGraph,
    /// Live edge → its dense arena id (the first slice of the edge-keyed
    /// dense storage story: the *state* behind an edge is slot-indexed;
    /// only this lookup still walks a tree).
    line_id: BTreeMap<EdgeKey, LineId>,
    /// The arena: line id → `(edge, random key)`. Vacant after deletion;
    /// vacated ids are recycled through `free`.
    slots: NodeMap<(EdgeKey, u64)>,
    /// Recycled line ids, reused LIFO.
    free: Vec<LineId>,
    /// Next never-used line id when `free` is empty.
    next_line: u64,
    /// Matched-status bitset keyed by line id — one bit per live edge,
    /// replacing the `BTreeSet<EdgeKey>` of matched keys.
    matched: NodeSet,
    /// Per node: the matched edge covering it, if any. An edge is matched
    /// iff both its endpoints point at it; this doubles as the
    /// lower-matched-neighbor oracle.
    cover: NodeMap<EdgeKey>,
    /// The edge order as a [`PriorityMap`] keyed by **line id**:
    /// `Priority::new(key, line_id)`, i.e. random key major, dense line
    /// id as the tie-break. This is the canonical settle order for both
    /// drains (the pre-front code tie-broke equal keys by [`EdgeKey`];
    /// random keys make that case measure-zero, and every prescribed-key
    /// test uses distinct keys).
    line_prio: PriorityMap,
    /// Dense ranks over `line_prio`, consumed by the rank-front drain.
    ranks: RankIndex,
    /// Persistent word-parallel dirty queue over line-id ranks.
    front: RankFront,
    /// Which dirty-queue realization [`Self::propagate`] drains.
    strategy: SettleStrategy,
    rng: StdRng,
}

impl NativeMatching {
    /// Creates the structure over `graph`, drawing a random priority per
    /// edge from `seed` and computing the initial greedy matching.
    #[must_use]
    pub fn new(graph: DynGraph, seed: u64) -> Self {
        let mut nm = Self::empty(seed);
        // Rebuild through the incremental path so the invariant machinery
        // is exercised uniformly.
        let mut id_map: NodeMap<NodeId> = NodeMap::new();
        for v in graph.nodes() {
            id_map.insert(v, nm.graph.add_node());
        }
        debug_assert!(
            graph.nodes().all(|v| id_map.get(v) == Some(&v)),
            "fresh ids align"
        );
        for key in graph.edges() {
            let (u, v) = key.endpoints();
            nm.insert_edge(u, v).expect("valid source graph");
        }
        nm
    }

    /// An empty structure (no nodes, no edges) seeded for key draws.
    fn empty(seed: u64) -> Self {
        NativeMatching {
            graph: DynGraph::new(),
            line_id: BTreeMap::new(),
            slots: NodeMap::new(),
            free: Vec::new(),
            next_line: 0,
            matched: NodeSet::new(),
            cover: NodeMap::new(),
            line_prio: PriorityMap::new(),
            ranks: RankIndex::new(),
            front: RankFront::new(),
            strategy: SettleStrategy::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Which dirty-queue realization the settle loop drains.
    #[must_use]
    pub fn settle_strategy(&self) -> SettleStrategy {
        self.strategy
    }

    /// Selects the dirty-queue realization. Purely a
    /// performance/verification knob: flips come out in increasing edge
    /// priority either way, so receipts are bit-identical for both
    /// settings — which the strategy-equivalence test pins.
    pub fn set_settle_strategy(&mut self, strategy: SettleStrategy) {
        self.strategy = strategy;
    }

    /// Admits a live edge into the arena, recycling a vacated id when one
    /// is available.
    fn alloc_line(&mut self, e: EdgeKey, key: u64) -> LineId {
        let id = self.free.pop().unwrap_or_else(|| {
            let id = NodeId(self.next_line);
            self.next_line += 1;
            id
        });
        debug_assert!(!self.matched.contains(id), "recycled id carries a bit");
        self.slots.insert(id, (e, key));
        self.line_id.insert(e, id);
        // Recycled ids re-enter π with a fresh key: the old priority was
        // removed at release, so the no-redraw invariant holds per
        // id-lifetime exactly as for graph nodes.
        self.line_prio.insert(id, Priority::new(key, id));
        self.ranks.insert(id, &self.line_prio);
        id
    }

    /// Retires a deleted edge's id, clearing its matched bit first so the
    /// recycled slot starts clean. Returns `(id, was_matched)`.
    fn release_line(&mut self, e: EdgeKey) -> (LineId, bool) {
        let id = self.line_id.remove(&e).expect("live edge");
        let was_matched = self.matched.remove(id);
        self.slots.remove(id);
        self.line_prio.remove(id);
        self.ranks.remove(id);
        self.free.push(id);
        (id, was_matched)
    }

    /// The base graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current maximal matching, as sorted edge keys (the arena's
    /// bitset is the storage; this materializes the stable public view).
    #[must_use]
    pub fn matching(&self) -> BTreeSet<EdgeKey> {
        self.matched.iter().map(|id| self.slots[id].0).collect()
    }

    /// Number of matched edges — a popcount on the arena bitset, no
    /// materialization.
    #[must_use]
    pub fn matching_len(&self) -> usize {
        self.matched.len()
    }

    /// Returns `true` if the edge `{u, v}` is currently matched.
    #[must_use]
    pub fn is_matched(&self, u: NodeId, v: NodeId) -> bool {
        self.line_id
            .get(&EdgeKey::new(u, v))
            .is_some_and(|&id| self.matched.contains(id))
    }

    fn priority_of(&self, e: EdgeKey) -> Priority {
        self.line_prio.of(self.line_id[&e])
    }

    /// An edge wants to be matched iff neither endpoint is covered by a
    /// matched edge of lower priority.
    fn desired(&self, e: EdgeKey) -> bool {
        let (u, v) = e.endpoints();
        for endpoint in [u, v] {
            if let Some(&cov) = self.cover.get(endpoint) {
                if cov != e && self.priority_of(cov) < self.priority_of(e) {
                    return false;
                }
            }
        }
        true
    }

    /// Incident live edges of `e` (sharing an endpoint).
    fn incident(&self, e: EdgeKey) -> Vec<EdgeKey> {
        let (u, v) = e.endpoints();
        let mut out = Vec::new();
        for endpoint in [u, v] {
            if let Some(nbrs) = self.graph.neighbors(endpoint) {
                for w in nbrs {
                    let k = EdgeKey::new(endpoint, w);
                    if k != e {
                        out.push(k);
                    }
                }
            }
        }
        out
    }

    /// Settles dirty edges in increasing priority order — the edge-level
    /// image of the MIS engine's propagation. Dispatches on
    /// [`SettleStrategy`]; both drains flip the identical sequence (an
    /// edge's final status is decided at its first pop, because every
    /// lower-priority flip precedes it), so the receipt is bit-identical
    /// either way.
    fn propagate(&mut self, seeds: Vec<EdgeKey>) -> MatchingReceipt {
        // One coalesced re-rank covers the (typically one) edge this
        // update admitted out of key order — the same cadence as the MIS
        // engines, and unconditional for the same reason: it bounds the
        // pending list so `RankIndex::remove` stays O(update) no matter
        // which strategy is active.
        self.ranks.flush(&self.line_prio);
        let receipt = match self.strategy {
            SettleStrategy::RankFront => self.propagate_front(seeds),
            SettleStrategy::BinaryHeap => self.propagate_heap(seeds),
        };
        // Post-drain, no line-id rank is parked in the front: safe to
        // compact tombstone mass so the span tracks the live edge count.
        self.ranks.maybe_compact();
        receipt
    }

    /// Applies one flip's matched-set and cover-map mutation; shared by
    /// both drains.
    fn apply_flip(&mut self, id: LineId, e: EdgeKey, desired: bool) {
        let (u, v) = e.endpoints();
        if desired {
            self.matched.insert(id);
            self.cover.insert(u, e);
            self.cover.insert(v, e);
        } else {
            self.matched.remove(id);
            for endpoint in [u, v] {
                if self.cover.get(endpoint) == Some(&e) {
                    self.cover.remove(endpoint);
                }
            }
        }
    }

    /// The word-parallel drain: dirty line-id ranks live in the
    /// persistent [`RankFront`] (set semantics — duplicate pushes
    /// merge), pops are whole-word bit scans, and the incident filter
    /// compares dense `u32` ranks.
    fn propagate_front(&mut self, seeds: Vec<EdgeKey>) -> MatchingReceipt {
        debug_assert!(self.front.is_empty(), "settle front leaked ranks");
        for e in seeds {
            // A deletion may seed edges it also removed; only live edges
            // hold a rank.
            if let Some(&id) = self.line_id.get(&e) {
                self.front.insert(self.ranks.rank_of(id));
            }
        }
        let mut flips = Vec::new();
        while let Some(rank) = self.front.pop_min() {
            let id = self.ranks.node_at(rank);
            let e = self.slots[id].0;
            let desired = self.desired(e);
            if desired == self.matched.contains(id) {
                continue;
            }
            self.apply_flip(id, e, desired);
            flips.push((e, desired));
            for other in self.incident(e) {
                let orank = self.ranks.rank_of(self.line_id[&other]);
                if orank > rank {
                    self.front.insert(orank);
                }
            }
        }
        MatchingReceipt { flips }
    }

    /// The retained heap drain — the pre-front settle loop, kept as the
    /// bitwise reference (duplicates pushed and skipped on re-pop).
    fn propagate_heap(&mut self, seeds: Vec<EdgeKey>) -> MatchingReceipt {
        let mut heap: BinaryHeap<Reverse<(Priority, EdgeKey)>> = seeds
            .into_iter()
            .filter(|e| self.line_id.contains_key(e))
            .map(|e| Reverse((self.priority_of(e), e)))
            .collect();
        let mut flips = Vec::new();
        while let Some(Reverse((prio, e))) = heap.pop() {
            let Some(&id) = self.line_id.get(&e) else {
                continue; // edge vanished mid-batch
            };
            let desired = self.desired(e);
            let current = self.matched.contains(id);
            if desired == current {
                continue;
            }
            self.apply_flip(id, e, desired);
            flips.push((e, desired));
            for other in self.incident(e) {
                if self.priority_of(other) > prio {
                    heap.push(Reverse((self.priority_of(other), other)));
                }
            }
        }
        MatchingReceipt { flips }
    }

    /// Adds an isolated node.
    pub fn add_node(&mut self) -> NodeId {
        self.graph.add_node()
    }

    /// Inserts a base edge, drawing its random priority, and restores the
    /// matching invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the structure is unchanged.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<MatchingReceipt, GraphError> {
        let key = self.rng.random();
        self.insert_edge_with_key(u, v, key)
    }

    /// Inserts an edge with a prescribed key (for differential tests that
    /// need identical priorities across implementations).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the structure is unchanged.
    pub fn insert_edge_with_key(
        &mut self,
        u: NodeId,
        v: NodeId,
        key: u64,
    ) -> Result<MatchingReceipt, GraphError> {
        self.graph.insert_edge(u, v)?;
        let e = EdgeKey::new(u, v);
        self.alloc_line(e, key);
        Ok(self.propagate(vec![e]))
    }

    /// Removes a base edge and restores the matching invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; on error the structure is unchanged.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<MatchingReceipt, GraphError> {
        self.graph.remove_edge(u, v)?;
        let e = EdgeKey::new(u, v);
        let (_, was_matched) = self.release_line(e);
        let mut seeds = Vec::new();
        if was_matched {
            for endpoint in [u, v] {
                if self.cover.get(endpoint) == Some(&e) {
                    self.cover.remove(endpoint);
                }
            }
            seeds.extend(self.incident(e));
            // incident() no longer sees e; seed the incident edges of both
            // endpoints, which may now be matchable.
            for endpoint in [u, v] {
                if let Some(nbrs) = self.graph.neighbors(endpoint) {
                    for w in nbrs {
                        seeds.push(EdgeKey::new(endpoint, w));
                    }
                }
            }
        }
        Ok(self.propagate(seeds))
    }

    /// Removes a node and all incident edges.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the node does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<MatchingReceipt, GraphError> {
        let nbrs = self.graph.neighbors_vec(v)?;
        let mut all_flips = Vec::new();
        for u in nbrs {
            let receipt = self.remove_edge(v, u)?;
            all_flips.extend(receipt.flips);
        }
        self.graph.remove_node(v)?;
        self.cover.remove(v);
        Ok(MatchingReceipt { flips: all_flips })
    }

    /// Verifies the maintained matching against a from-scratch greedy
    /// recomputation with the same edge priorities, plus maximality.
    ///
    /// # Panics
    ///
    /// Panics on divergence.
    pub fn assert_consistent(&self) {
        // Arena integrity: the lookup table and the slot table are
        // mutually inverse, the free list is disjoint from the live ids,
        // and no vacant slot carries a matched bit.
        assert_eq!(self.line_id.len(), self.slots.len(), "arena tables skewed");
        assert_eq!(self.line_id.len(), self.graph.edge_count());
        assert_eq!(self.line_prio.len(), self.slots.len(), "edge π skewed");
        self.ranks.assert_consistent(&self.line_prio);
        assert!(self.front.is_empty(), "settle front leaked ranks");
        for (&e, &id) in &self.line_id {
            assert_eq!(self.slots.get(id).map(|s| s.0), Some(e), "slot mismatch");
        }
        for &id in &self.free {
            assert!(self.slots.get(id).is_none(), "freed id {id} still live");
            assert!(!self.matched.contains(id), "freed id {id} still matched");
        }
        assert_eq!(
            self.matching_len(),
            self.matching().len(),
            "popcount diverged from materialized matching"
        );
        // From-scratch greedy: edges by increasing (key, edge).
        let mut order: Vec<EdgeKey> = self.line_id.keys().copied().collect();
        order.sort_unstable_by_key(|&e| self.priority_of(e));
        let mut truth: BTreeSet<EdgeKey> = BTreeSet::new();
        let mut covered = NodeSet::new();
        for e in order {
            let (u, v) = e.endpoints();
            if !covered.contains(u) && !covered.contains(v) {
                truth.insert(e);
                covered.insert(u);
                covered.insert(v);
            }
        }
        let matching = self.matching();
        assert_eq!(matching, truth, "matching diverged from greedy");
        assert!(
            crate::verify::is_maximal_matching(&self.graph, &matching),
            "matching is not maximal"
        );
        // Cover map agrees with the matched set.
        for &e in &matching {
            let (u, v) = e.endpoints();
            assert_eq!(self.cover.get(u), Some(&e));
            assert_eq!(self.cover.get(v), Some(&e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    #[test]
    fn initial_matching_is_greedy_and_maximal() {
        let mut rng = StdRng::seed_from_u64(0);
        for n in [2usize, 6, 15, 30] {
            let (g, _) = generators::erdos_renyi(n, 0.3, &mut rng);
            let nm = NativeMatching::new(g, n as u64);
            nm.assert_consistent();
        }
    }

    #[test]
    fn single_edge_is_matched() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        g.insert_edge(ids[0], ids[1]).unwrap();
        let nm = NativeMatching::new(g, 1);
        assert!(nm.is_matched(ids[0], ids[1]));
    }

    #[test]
    fn removing_matched_edge_promotes_alternative() {
        // Path p0-p1-p2-p3 with keys forcing {p0p1, p2p3}: remove p0p1 →
        // p1p2 becomes matchable → p2p3 unmatches... depends on keys; use
        // prescribed keys: p1p2 has the middle priority.
        let (mut g, ids) = DynGraph::with_nodes(4);
        g.insert_edge(ids[0], ids[1]).unwrap();
        g.insert_edge(ids[1], ids[2]).unwrap();
        g.insert_edge(ids[2], ids[3]).unwrap();
        let mut nm = NativeMatching::empty(0);
        for _ in 0..4 {
            nm.add_node();
        }
        nm.insert_edge_with_key(ids[0], ids[1], 10).unwrap();
        nm.insert_edge_with_key(ids[1], ids[2], 20).unwrap();
        nm.insert_edge_with_key(ids[2], ids[3], 30).unwrap();
        assert!(nm.is_matched(ids[0], ids[1]));
        assert!(nm.is_matched(ids[2], ids[3]));
        let receipt = nm.remove_edge(ids[0], ids[1]).unwrap();
        // p1p2 (key 20) now matchable; p2p3 (key 30) must unmatch.
        assert!(nm.is_matched(ids[1], ids[2]));
        assert!(!nm.is_matched(ids[2], ids[3]));
        assert_eq!(receipt.adjustments(), 2);
        nm.assert_consistent();
    }

    #[test]
    fn churn_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = generators::erdos_renyi(12, 0.3, &mut rng);
        let mut nm = NativeMatching::new(g, 7);
        for _ in 0..200 {
            if rng.random_bool(0.5) {
                if let Some((u, v)) = generators::random_non_edge(nm.graph(), &mut rng) {
                    nm.insert_edge(u, v).unwrap();
                }
            } else if let Some((u, v)) = generators::random_edge(nm.graph(), &mut rng) {
                nm.remove_edge(u, v).unwrap();
            }
            nm.assert_consistent();
        }
    }

    #[test]
    fn node_removal() {
        let (g, ids) = generators::star(5);
        let mut nm = NativeMatching::new(g, 3);
        nm.remove_node(ids[0]).unwrap();
        assert!(nm.matching().is_empty(), "no edges remain");
        nm.assert_consistent();
    }

    #[test]
    fn three_path_statistics_match_reduction() {
        // Native matching must reproduce the 5/3-per-path expectation.
        let trials = 600u64;
        let mut total = 0usize;
        for t in 0..trials {
            let (g, _) = generators::disjoint_three_paths(1);
            total += NativeMatching::new(g, t).matching().len();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 5.0 / 3.0).abs() < 0.12, "mean {mean} ≠ 5/3");
    }

    #[test]
    fn front_and_heap_strategies_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(23);
        let (g, _) = generators::erdos_renyi(14, 0.3, &mut rng);
        let mut front = NativeMatching::new(g.clone(), 9);
        let mut heap = NativeMatching::new(g, 9);
        heap.set_settle_strategy(SettleStrategy::BinaryHeap);
        assert_eq!(front.settle_strategy(), SettleStrategy::RankFront);
        for step in 0..250 {
            // Mixed churn: edge toggles plus occasional node removal and
            // re-insertion, so line ids get recycled under both drains.
            let rf;
            let rh;
            if rng.random_bool(0.5) {
                let Some((u, v)) = generators::random_non_edge(front.graph(), &mut rng) else {
                    continue;
                };
                rf = front.insert_edge(u, v).unwrap();
                rh = heap.insert_edge(u, v).unwrap();
            } else {
                let Some((u, v)) = generators::random_edge(front.graph(), &mut rng) else {
                    continue;
                };
                rf = front.remove_edge(u, v).unwrap();
                rh = heap.remove_edge(u, v).unwrap();
            }
            assert_eq!(rf, rh, "step {step}: receipts diverged");
            assert_eq!(front.matching(), heap.matching(), "step {step}");
            if step % 50 == 0 {
                front.assert_consistent();
                heap.assert_consistent();
            }
        }
        front.assert_consistent();
        heap.assert_consistent();
    }

    #[test]
    fn errors_leave_structure_unchanged() {
        let (g, ids) = generators::path(3);
        let mut nm = NativeMatching::new(g, 0);
        let snapshot = nm.matching();
        assert!(nm.insert_edge(ids[0], ids[1]).is_err());
        assert!(nm.remove_edge(ids[0], ids[2]).is_err());
        assert!(nm.remove_node(NodeId(99)).is_err());
        assert_eq!(nm.matching(), snapshot);
        nm.assert_consistent();
    }
}
