use std::collections::VecDeque;

use dmis_core::MisState;
use dmis_graph::NodeId;
use dmis_sim::{AsyncAutomaton, Automaton, LocalEvent, MessageBits, NeighborInfo, Protocol};

use crate::{Knowledge, PeerState};

/// Messages of the direct template protocol: join handshakes plus plain
/// output announcements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdMsg {
    /// Join handshake (same shape as Algorithm 2's).
    Info {
        /// Sender's random key ℓ.
        ell: u64,
        /// Sender's current output.
        state: MisState,
        /// Whether the hearer should introduce itself.
        needs_reply: bool,
    },
    /// "My output is now `…`."
    State(MisState),
}

impl MessageBits for TdMsg {
    fn bits(&self) -> usize {
        match self {
            TdMsg::Info { .. } => 68,
            TdMsg::State(_) => 2,
        }
    }
}

/// A node running the **direct distributed implementation** of the template
/// (Corollary 6): whenever a node observes that its MIS invariant is
/// violated — it is in `M̄` with no lower-order `M` neighbor, or in `M` with
/// one — it flips its output immediately and broadcasts the new value.
///
/// This achieves the paper's optimal **1 adjustment and 1 round in
/// expectation** (the influenced set has expected size 1 and each level of
/// the cascade takes one round), but a node may flip several times (the
/// `u₂` example), so the *broadcast* complexity is not constant — that is
/// precisely the gap Algorithm 2 ([`crate::ConstantBroadcast`]) closes, and
/// experiment E11 measures.
///
/// The same struct implements the asynchronous automaton: correctness under
/// arbitrary message delays follows by induction over π (the minimal
/// affected node's decision is final; each node re-evaluates as lower-order
/// information arrives).
#[derive(Debug, Clone)]
pub struct TdNode {
    know: Knowledge,
    output: MisState,
    retiring: bool,
    outq: VecDeque<TdMsg>,
    eval_pending: bool,
}

impl TdNode {
    fn new(id: NodeId, ell: u64) -> Self {
        TdNode {
            know: Knowledge::new(id, ell),
            output: MisState::Out,
            retiring: false,
            outq: VecDeque::new(),
            eval_pending: false,
        }
    }

    /// The node's knowledge of its neighborhood (inspection/tests).
    #[must_use]
    pub fn knowledge(&self) -> &Knowledge {
        &self.know
    }

    /// Re-evaluates the invariant against current knowledge and flips the
    /// output if violated.
    fn evaluate(&mut self) {
        if !self.know.complete() {
            return; // wait for handshakes
        }
        let desired = if self.retiring {
            MisState::Out
        } else {
            MisState::from_membership(self.know.no_lower_in_mis())
        };
        if desired != self.output {
            self.output = desired;
            self.outq.push_back(TdMsg::State(desired));
        }
    }

    fn handle_event(&mut self, event: LocalEvent) {
        match event {
            LocalEvent::EdgeAdded { peer } => {
                self.know.add_unknown(peer);
                self.outq.push_back(TdMsg::Info {
                    ell: self.know.ell(),
                    state: self.output,
                    needs_reply: false,
                });
                self.eval_pending = true;
            }
            LocalEvent::EdgeRemoved { peer, .. }
            | LocalEvent::NeighborDepartedAbrupt { peer }
            | LocalEvent::NeighborRetired { peer } => {
                self.know.remove(peer);
                self.eval_pending = true;
            }
            LocalEvent::NeighborJoined { peer } => {
                self.know.add_unknown(peer);
            }
            LocalEvent::SelfJoined { neighbors } => {
                for peer in neighbors {
                    self.know.add_unknown(peer);
                }
                self.output = MisState::Out;
                self.outq.push_back(TdMsg::Info {
                    ell: self.know.ell(),
                    state: MisState::Out,
                    needs_reply: true,
                });
                self.eval_pending = true;
            }
            LocalEvent::SelfUnmuted { neighbors } => {
                for NeighborInfo { id, ell, state } in neighbors {
                    self.know.add_known(id, ell, PeerState::Committed(state));
                }
                self.output = MisState::Out;
                self.outq.push_back(TdMsg::Info {
                    ell: self.know.ell(),
                    state: MisState::Out,
                    needs_reply: false,
                });
                self.eval_pending = true;
            }
            LocalEvent::SelfRetiring => {
                self.retiring = true;
                self.eval_pending = true;
            }
        }
    }

    fn handle_message(&mut self, from: NodeId, msg: &TdMsg) {
        match msg {
            TdMsg::Info {
                ell,
                state,
                needs_reply,
            } => {
                if !self.know.contains(from) {
                    return;
                }
                self.know.learn_info(from, *ell, *state);
                if *needs_reply {
                    self.outq.push_back(TdMsg::Info {
                        ell: self.know.ell(),
                        state: self.output,
                        needs_reply: false,
                    });
                }
                self.eval_pending = true;
            }
            TdMsg::State(s) => {
                self.know.learn_state(from, PeerState::Committed(*s));
                self.eval_pending = true;
            }
        }
    }
}

impl Automaton for TdNode {
    type Msg = TdMsg;

    fn on_event(&mut self, event: LocalEvent) {
        self.handle_event(event);
    }

    fn step(&mut self, inbox: &[(NodeId, TdMsg)]) -> Option<TdMsg> {
        for (from, msg) in inbox {
            self.handle_message(*from, msg);
        }
        if self.eval_pending {
            self.eval_pending = false;
            self.evaluate();
        }
        self.outq.pop_front()
    }

    fn output(&self) -> MisState {
        self.output
    }

    fn is_quiet(&self) -> bool {
        self.outq.is_empty() && !self.eval_pending
    }
}

impl AsyncAutomaton for TdNode {
    type Msg = TdMsg;

    fn on_message(&mut self, from: NodeId, msg: &TdMsg) -> Vec<TdMsg> {
        self.handle_message(from, msg);
        if self.eval_pending {
            self.eval_pending = false;
            self.evaluate();
        }
        self.outq.drain(..).collect()
    }

    fn on_event(&mut self, event: LocalEvent) -> Vec<TdMsg> {
        self.handle_event(event);
        if self.eval_pending {
            self.eval_pending = false;
            self.evaluate();
        }
        self.outq.drain(..).collect()
    }

    fn output(&self) -> MisState {
        self.output
    }
}

/// Protocol factory for [`TdNode`].
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, DistributedChange};
/// use dmis_protocol::TemplateDirect;
/// use dmis_sim::SyncNetwork;
///
/// let (g, ids) = generators::path(6);
/// let mut net = SyncNetwork::bootstrap(TemplateDirect, g, 3);
/// let outcome = net
///     .apply_change(&DistributedChange::AbruptDeleteEdge(ids[2], ids[3]))
///     .unwrap();
/// net.assert_greedy_invariant();
/// # let _ = outcome;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplateDirect;

impl TemplateDirect {
    /// Spawns an asynchronous node in a stable state (for
    /// [`dmis_sim::AsyncNetwork`] harnesses).
    #[must_use]
    pub fn spawn_stable_async(
        &self,
        id: NodeId,
        ell: u64,
        state: MisState,
        neighbors: &[NeighborInfo],
    ) -> TdNode {
        <Self as Protocol>::spawn_stable(self, id, ell, state, neighbors)
    }
}

impl Protocol for TemplateDirect {
    type Node = TdNode;

    fn spawn(&self, id: NodeId, ell: u64) -> TdNode {
        TdNode::new(id, ell)
    }

    fn spawn_stable(
        &self,
        id: NodeId,
        ell: u64,
        state: MisState,
        neighbors: &[NeighborInfo],
    ) -> TdNode {
        let mut node = TdNode::new(id, ell);
        node.output = state;
        for info in neighbors {
            node.know
                .add_known(info.id, info.ell, PeerState::Committed(info.state));
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_core::PriorityMap;
    use dmis_graph::stream::{self, ChurnConfig};
    use dmis_graph::{generators, DistributedChange, DynGraph};
    use dmis_sim::{AsyncNetwork, RandomDelays, SyncNetwork, UnitDelays};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn net_on(g: DynGraph, order: &[NodeId], seed: u64) -> SyncNetwork<TemplateDirect> {
        let pm = PriorityMap::from_order(order);
        SyncNetwork::bootstrap_with_priorities(TemplateDirect, g, pm, seed)
    }

    #[test]
    fn single_flip_takes_one_round() {
        let (g, ids) = generators::path(2);
        let mut net = net_on(g, &ids, 0);
        let outcome = net
            .apply_change(&DistributedChange::AbruptDeleteEdge(ids[0], ids[1]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(outcome.adjustments(), 1);
        assert_eq!(outcome.metrics.rounds, 1, "a single round suffices");
        assert_eq!(outcome.metrics.broadcasts, 1);
    }

    #[test]
    fn u2_gadget_double_flip_is_visible_in_broadcasts() {
        let (g, pm, [v_star, _, _, _, _, anchor]) = dmis_core::template::u2_gadget();
        let order = pm.nodes_by_priority();
        let mut net = net_on(g, &order, 0);
        let outcome = net
            .apply_change(&DistributedChange::InsertEdge(anchor, v_star))
            .unwrap();
        net.assert_greedy_invariant();
        // 2 Info + 6 state changes (v*, u1, u2, w1, w2, and u2 again).
        assert_eq!(outcome.metrics.broadcasts, 8);
        // u₂'s net adjustment is zero: only 4 outputs differ in the end.
        assert_eq!(outcome.adjustments(), 4);
    }

    #[test]
    fn random_churn_maintains_invariant() {
        let mut rng = StdRng::seed_from_u64(8);
        let (g, _) = generators::erdos_renyi(14, 0.3, &mut rng);
        let mut net = SyncNetwork::bootstrap(TemplateDirect, g, 2);
        for _ in 0..100 {
            let Some(change) =
                stream::random_change(&net.logical_graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let change = stream::randomize_distributed(&change, &mut rng);
            net.apply_change(&change).unwrap();
            net.assert_greedy_invariant();
        }
    }

    fn async_net_on(
        g: &DynGraph,
        pm: &PriorityMap,
        delays_seed: u64,
    ) -> AsyncNetwork<TdNode, RandomDelays> {
        let mis = dmis_core::static_greedy::greedy_mis(g, pm);
        let proto = TemplateDirect;
        let nodes: BTreeMap<NodeId, TdNode> = g
            .nodes()
            .map(|v| {
                let info: Vec<NeighborInfo> = g
                    .neighbors(v)
                    .unwrap()
                    .map(|u| NeighborInfo {
                        id: u,
                        ell: pm.of(u).key(),
                        state: MisState::from_membership(mis.contains(&u)),
                    })
                    .collect();
                let node = proto.spawn_stable_async(
                    v,
                    pm.of(v).key(),
                    MisState::from_membership(mis.contains(&v)),
                    &info,
                );
                (v, node)
            })
            .collect();
        AsyncNetwork::new(g.clone(), nodes, RandomDelays::new(delays_seed, 7))
    }

    #[test]
    fn async_edge_deletion_stabilizes_under_random_delays() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = generators::erdos_renyi(12, 0.3, &mut rng);
            let mut pm = PriorityMap::new();
            for v in g.nodes() {
                pm.assign(v, &mut rng);
            }
            let Some((u, v)) = generators::random_edge(&g, &mut rng) else {
                continue;
            };
            let mut net = async_net_on(&g, &pm, seed);
            // Apply the change: drop the edge, notify both endpoints.
            net.graph_mut().remove_edge(u, v).unwrap();
            net.inject_event(
                u,
                dmis_sim::LocalEvent::EdgeRemoved {
                    peer: v,
                    graceful: false,
                },
            );
            net.inject_event(
                v,
                dmis_sim::LocalEvent::EdgeRemoved {
                    peer: u,
                    graceful: false,
                },
            );
            net.run();
            let mut g_new = g.clone();
            g_new.remove_edge(u, v).unwrap();
            let expect = dmis_core::static_greedy::greedy_mis(&g_new, &pm);
            assert_eq!(net.mis(), expect, "async output = greedy MIS");
        }
    }

    #[test]
    fn async_causal_depth_tracks_cascade_length() {
        // Path with increasing priorities: deleting the first edge cascades
        // down the whole path; the causal chain is Θ(n).
        let (g, ids) = generators::path(8);
        let pm = PriorityMap::from_order(&ids);
        let mis = dmis_core::static_greedy::greedy_mis(&g, &pm);
        assert!(mis.contains(&ids[0]));
        let proto = TemplateDirect;
        let nodes: BTreeMap<NodeId, TdNode> = g
            .nodes()
            .map(|v| {
                let info: Vec<NeighborInfo> = g
                    .neighbors(v)
                    .unwrap()
                    .map(|u| NeighborInfo {
                        id: u,
                        ell: pm.of(u).key(),
                        state: MisState::from_membership(mis.contains(&u)),
                    })
                    .collect();
                (
                    v,
                    proto.spawn_stable_async(
                        v,
                        pm.of(v).key(),
                        MisState::from_membership(mis.contains(&v)),
                        &info,
                    ),
                )
            })
            .collect();
        let mut net = AsyncNetwork::new(g.clone(), nodes, UnitDelays);
        net.graph_mut().remove_edge(ids[0], ids[1]).unwrap();
        net.inject_event(
            ids[0],
            dmis_sim::LocalEvent::EdgeRemoved {
                peer: ids[1],
                graceful: false,
            },
        );
        net.inject_event(
            ids[1],
            dmis_sim::LocalEvent::EdgeRemoved {
                peer: ids[0],
                graceful: false,
            },
        );
        let outcome = net.run();
        assert!(outcome.causal_depth >= 6, "cascade spans the path");
        let mut g_new = g;
        g_new.remove_edge(ids[0], ids[1]).unwrap();
        assert_eq!(net.mis(), dmis_core::static_greedy::greedy_mis(&g_new, &pm));
    }

    #[test]
    fn node_churn_through_sync_network() {
        let (g, ids) = generators::cycle(6);
        let mut net = net_on(g, &ids, 0);
        let fresh = net.graph().peek_next_id();
        net.apply_change(&DistributedChange::InsertNode {
            id: fresh,
            edges: vec![ids[0], ids[3]],
        })
        .unwrap();
        net.assert_greedy_invariant();
        net.apply_change(&DistributedChange::GracefulDeleteNode(ids[0]))
            .unwrap();
        net.assert_greedy_invariant();
        net.apply_change(&DistributedChange::AbruptDeleteNode(ids[3]))
            .unwrap();
        net.assert_greedy_invariant();
    }
}
