use std::collections::VecDeque;

use dmis_core::MisState;
use dmis_graph::NodeId;
use dmis_sim::{Automaton, LocalEvent, MessageBits, NeighborInfo, Protocol};

use crate::{Knowledge, PeerState};

/// Messages of Algorithm 2.
///
/// State-change announcements (`ToC`, `ToR`, `Commit`) cost O(1) bits — this
/// is the paper's observation (after Métivier et al.) that once neighbors
/// know their relative order, recovery needs only constant-size messages.
/// `Info` carries the random key ℓ and is only sent during join handshakes
/// (`O(log n)` bits, within the CONGEST budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbMsg {
    /// Join handshake: "my random key is `ell`, my output is `state`"; if
    /// `needs_reply` the hearer answers with its own `Info` (fresh nodes
    /// know nothing, §4.1).
    Info {
        /// Sender's random key ℓ.
        ell: u64,
        /// Sender's committed output.
        state: MisState,
        /// Whether the sender asks neighbors to introduce themselves.
        needs_reply: bool,
    },
    /// "I changed to state C."
    ToC,
    /// "I changed to state R."
    ToR,
    /// "I committed to `M` / `M̄`."
    Commit(MisState),
}

impl MessageBits for CbMsg {
    fn bits(&self) -> usize {
        match self {
            // 64-bit key + 1 state bit + 1 reply bit, plus a 2-bit tag.
            CbMsg::Info { .. } => 68,
            CbMsg::ToC | CbMsg::ToR => 2,
            CbMsg::Commit(_) => 3,
        }
    }
}

/// Internal phase of Algorithm 2. Committed `M`/`M̄` is represented by
/// `Stable` plus the node's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Stable,
    Changing,
    Ready,
}

/// A node running the paper's **Algorithm 2** — the constant-broadcast
/// dynamic MIS protocol.
///
/// Transition rules (Section 4, verbatim):
///
/// 1. `v ∈ M`: if some `u ∈ Iπ(v)` changes to state `C`, change to `C`.
/// 2. `v ∈ M̄`: if some `u ∈ Iπ(v)` changes to `C` and all other
///    `w ∈ Iπ(v)` are not in `M`, change to `C`.
/// 3. `v ∈ C`: if no neighbor `u` with `π(v) < π(u)` is in `C` and `v`
///    changed to `C` at least 2 rounds ago, change to `R`.
/// 4. `v ∈ R`: if all `u ∈ Iπ(v)` are committed, commit: `M` if all lower
///    neighbors are `M̄`, else `M̄`.
///
/// Initial triggers come from the topology events: the single violated node
/// `v*` (or, for an abrupt node deletion, the whole set `S₁` of orphaned
/// `M̄` neighbors, §4.2) enters `C`. A gracefully deleted node drives its
/// own exit and always commits `M̄`.
#[derive(Debug, Clone)]
pub struct CbNode {
    know: Knowledge,
    phase: Phase,
    output: MisState,
    retiring: bool,
    /// Rounds elapsed since our `ToC` broadcast actually left (rule 3's
    /// two-round guard covers the notification round trip to higher
    /// neighbors).
    c_timer: Option<usize>,
    outq: VecDeque<CbMsg>,
    /// A join handshake is pending: evaluate the invariant once every
    /// neighbor's ℓ is known.
    eval_pending: bool,
}

impl CbNode {
    fn new(id: NodeId, ell: u64) -> Self {
        CbNode {
            know: Knowledge::new(id, ell),
            phase: Phase::Stable,
            output: MisState::Out,
            retiring: false,
            c_timer: None,
            outq: VecDeque::new(),
            eval_pending: false,
        }
    }

    /// The node's knowledge of its neighborhood (inspection/tests).
    #[must_use]
    pub fn knowledge(&self) -> &Knowledge {
        &self.know
    }

    /// Returns `true` while the node is in a transient (`C`/`R`) phase.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.phase != Phase::Stable
    }

    fn enter_c(&mut self) {
        debug_assert_eq!(self.phase, Phase::Stable);
        self.phase = Phase::Changing;
        self.c_timer = None;
        self.outq.push_back(CbMsg::ToC);
    }

    /// Rule-2 style check for an `M̄` node that may have lost its last
    /// lower-order MIS neighbor.
    fn maybe_enter_c_as_mbar(&mut self) {
        if self.phase == Phase::Stable
            && self.output == MisState::Out
            && !self.retiring
            && self.know.no_lower_in_mis()
        {
            self.enter_c();
        }
    }
}

impl Automaton for CbNode {
    type Msg = CbMsg;

    fn on_event(&mut self, event: LocalEvent) {
        match event {
            LocalEvent::EdgeAdded { peer } => {
                self.know.add_unknown(peer);
                // §4.1: both endpoints broadcast ℓ and state; the higher one
                // reacts once it hears the peer (see Info handling in step).
                self.outq.push_back(CbMsg::Info {
                    ell: self.know.ell(),
                    state: self.output,
                    needs_reply: false,
                });
            }
            LocalEvent::EdgeRemoved { peer, .. } => {
                let was_lower = self.know.is_lower(peer);
                let was = self.know.remove(peer);
                if was_lower && was.is_some_and(PeerState::is_in_mis) {
                    self.maybe_enter_c_as_mbar();
                }
            }
            LocalEvent::NeighborJoined { peer } => {
                self.know.add_unknown(peer);
            }
            LocalEvent::NeighborDepartedAbrupt { peer } => {
                // §4.2: each orphaned M̄ neighbor of the vanished node is a
                // source of the recovery (the set S₁).
                let was_lower = self.know.is_lower(peer);
                let was = self.know.remove(peer);
                if was_lower && was.is_some_and(PeerState::is_in_mis) {
                    self.maybe_enter_c_as_mbar();
                }
            }
            LocalEvent::NeighborRetired { peer } => {
                // A gracefully retired node's final output is M̄; dropping
                // it violates nothing.
                self.know.remove(peer);
            }
            LocalEvent::SelfJoined { neighbors } => {
                for peer in neighbors {
                    self.know.add_unknown(peer);
                }
                self.output = MisState::Out; // temporary M̄ of §4.1
                self.outq.push_back(CbMsg::Info {
                    ell: self.know.ell(),
                    state: MisState::Out,
                    needs_reply: true,
                });
                self.eval_pending = true;
            }
            LocalEvent::SelfUnmuted { neighbors } => {
                for NeighborInfo { id, ell, state } in neighbors {
                    self.know.add_known(id, ell, PeerState::Committed(state));
                }
                self.output = MisState::Out;
                self.outq.push_back(CbMsg::Info {
                    ell: self.know.ell(),
                    state: MisState::Out,
                    needs_reply: false,
                });
                self.eval_pending = true;
            }
            LocalEvent::SelfRetiring => {
                self.retiring = true;
                if self.output == MisState::In {
                    self.enter_c();
                }
            }
        }
    }

    fn step(&mut self, inbox: &[(NodeId, CbMsg)]) -> Option<CbMsg> {
        let mut lower_changed_to_c = false;
        let mut lower_mis_revealed = false;
        for (from, msg) in inbox {
            match msg {
                CbMsg::Info {
                    ell,
                    state,
                    needs_reply,
                } => {
                    if !self.know.contains(*from) {
                        continue; // stranger (e.g. stale relay)
                    }
                    self.know.learn_info(*from, *ell, *state);
                    if *needs_reply {
                        self.outq.push_back(CbMsg::Info {
                            ell: self.know.ell(),
                            state: self.output,
                            needs_reply: false,
                        });
                    }
                    if *state == MisState::In && self.know.is_lower(*from) {
                        lower_mis_revealed = true;
                    }
                }
                CbMsg::ToC => {
                    self.know.learn_state(*from, PeerState::Changing);
                    if self.know.is_lower(*from) {
                        lower_changed_to_c = true;
                    }
                }
                CbMsg::ToR => {
                    self.know.learn_state(*from, PeerState::Ready);
                }
                CbMsg::Commit(s) => {
                    self.know.learn_state(*from, PeerState::Committed(*s));
                }
            }
        }

        if self.phase == Phase::Stable {
            // Edge insertion (§4.1): an M node that discovers a lower M
            // neighbor is the violated v* and starts the recovery.
            if lower_mis_revealed && self.output == MisState::In && !self.retiring {
                self.enter_c();
            }
            // Rules 1 and 2, triggered by lower ToC announcements.
            if self.phase == Phase::Stable && lower_changed_to_c {
                match self.output {
                    MisState::In => self.enter_c(),
                    MisState::Out => self.maybe_enter_c_as_mbar(),
                }
            }
            // Join handshake completed: evaluate the invariant once.
            if self.phase == Phase::Stable && self.eval_pending && self.know.complete() {
                self.eval_pending = false;
                if self.output == MisState::Out && self.know.no_lower_in_mis() {
                    self.enter_c();
                }
            }
        }

        // Rule 3: C → R after the two-round guard, unless a higher neighbor
        // is still in C.
        if self.phase == Phase::Changing {
            if let Some(t) = self.c_timer.as_mut() {
                *t += 1;
                if *t >= 2 && !self.know.higher_changing_exists() {
                    self.phase = Phase::Ready;
                    self.outq.push_back(CbMsg::ToR);
                }
            }
        }

        // Rule 4: R → commit once every lower neighbor is committed.
        if self.phase == Phase::Ready && self.know.all_lower_committed() {
            self.output = if self.retiring {
                MisState::Out
            } else {
                MisState::from_membership(self.know.no_lower_in_mis())
            };
            self.phase = Phase::Stable;
            self.outq.push_back(CbMsg::Commit(self.output));
        }

        let msg = self.outq.pop_front();
        if matches!(msg, Some(CbMsg::ToC)) {
            self.c_timer = Some(0);
        }
        msg
    }

    fn output(&self) -> MisState {
        self.output
    }

    fn is_quiet(&self) -> bool {
        self.phase == Phase::Stable && self.outq.is_empty() && !self.eval_pending
    }
}

/// Protocol factory for [`CbNode`] — plug into
/// [`dmis_sim::SyncNetwork::bootstrap`].
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, DistributedChange};
/// use dmis_protocol::ConstantBroadcast;
/// use dmis_sim::SyncNetwork;
///
/// let (g, ids) = generators::cycle(8);
/// let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, 42);
/// let outcome = net
///     .apply_change(&DistributedChange::AbruptDeleteNode(ids[3]))
///     .unwrap();
/// net.assert_greedy_invariant();
/// println!("{} adjustments, {}", outcome.adjustments(), outcome.metrics);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantBroadcast;

impl Protocol for ConstantBroadcast {
    type Node = CbNode;

    fn spawn(&self, id: NodeId, ell: u64) -> CbNode {
        CbNode::new(id, ell)
    }

    fn spawn_stable(
        &self,
        id: NodeId,
        ell: u64,
        state: MisState,
        neighbors: &[NeighborInfo],
    ) -> CbNode {
        let mut node = CbNode::new(id, ell);
        node.output = state;
        for info in neighbors {
            node.know
                .add_known(info.id, info.ell, PeerState::Committed(info.state));
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_core::DynamicMis;
    use dmis_core::PriorityMap;
    use dmis_graph::stream::{self, ChurnConfig};
    use dmis_graph::{generators, DistributedChange, DynGraph};
    use dmis_sim::SyncNetwork;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn net_on(g: DynGraph, order: &[NodeId], seed: u64) -> SyncNetwork<ConstantBroadcast> {
        let pm = PriorityMap::from_order(order);
        SyncNetwork::bootstrap_with_priorities(ConstantBroadcast, g, pm, seed)
    }

    #[test]
    fn bootstrap_matches_greedy() {
        let (g, ids) = generators::path(5);
        let net = net_on(g, &ids, 0);
        net.assert_greedy_invariant();
        assert_eq!(net.mis(), [ids[0], ids[2], ids[4]].into_iter().collect());
    }

    #[test]
    fn edge_insert_between_mis_nodes() {
        // p0, p2 in MIS; insert {p0, p2}: p2 (higher) must leave, p3 joins.
        let (g, ids) = generators::path(4);
        let mut net = net_on(g, &ids, 0);
        let outcome = net
            .apply_change(&DistributedChange::InsertEdge(ids[0], ids[2]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(
            outcome.adjusted,
            [ids[2], ids[3]].into_iter().collect(),
            "p2 leaves, p3 enters"
        );
        // Handshake (2 Infos) + p2: ToC, ToR, Commit + p3: ToC, ToR, Commit.
        assert_eq!(outcome.metrics.broadcasts, 8);
    }

    #[test]
    fn edge_insert_without_violation_is_cheap() {
        let (g, ids) = generators::path(4);
        let mut net = net_on(g, &ids, 0);
        // p1 (out) – p3 (out): no violation, only the 2 Info broadcasts.
        let outcome = net
            .apply_change(&DistributedChange::InsertEdge(ids[1], ids[3]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(outcome.adjustments(), 0);
        assert_eq!(outcome.metrics.broadcasts, 2);
    }

    #[test]
    fn edge_delete_promotes_uncovered_node() {
        let (g, ids) = generators::path(2);
        let mut net = net_on(g, &ids, 0);
        for graceful in [true, false] {
            // Re-insert / delete to exercise both variants.
            if !net.graph().has_edge(ids[0], ids[1]) {
                net.apply_change(&DistributedChange::InsertEdge(ids[0], ids[1]))
                    .unwrap();
            }
            let change = if graceful {
                DistributedChange::GracefulDeleteEdge(ids[0], ids[1])
            } else {
                DistributedChange::AbruptDeleteEdge(ids[0], ids[1])
            };
            let outcome = net.apply_change(&change).unwrap();
            net.assert_greedy_invariant();
            assert_eq!(outcome.adjusted, [ids[1]].into_iter().collect());
            // ToC, ToR, Commit from ids[1] only.
            assert_eq!(outcome.metrics.broadcasts, 3);
        }
    }

    #[test]
    fn node_insertion_handshake_costs_degree_broadcasts() {
        let (g, ids) = generators::star(5);
        // Leaves first: MIS = leaves, center out.
        let order: Vec<NodeId> = ids[1..].iter().copied().chain([ids[0]]).collect();
        let mut net = net_on(g, &order, 0);
        let fresh = net.graph().peek_next_id();
        let outcome = net
            .apply_change(&DistributedChange::InsertNode {
                id: fresh,
                edges: vec![ids[0]], // attach to the center (out)
            })
            .unwrap();
        net.assert_greedy_invariant();
        // Newcomer's lower neighborhood: just the center (out) → joins MIS.
        assert!(net.mis().contains(&fresh));
        // 1 Info + 1 Welcome + ToC + ToR + Commit.
        assert_eq!(outcome.metrics.broadcasts, 5);
    }

    #[test]
    fn unmute_costs_constant_broadcasts() {
        let (g, ids) = generators::path(3);
        let mut net = net_on(g, &ids, 0);
        let fresh = net.graph().peek_next_id();
        let outcome = net
            .apply_change(&DistributedChange::UnmuteNode {
                id: fresh,
                edges: vec![ids[1]], // attach to the out-node
            })
            .unwrap();
        net.assert_greedy_invariant();
        assert!(net.mis().contains(&fresh));
        // 1 Info (no replies) + ToC + ToR + Commit.
        assert_eq!(outcome.metrics.broadcasts, 4);
    }

    #[test]
    fn graceful_deletion_of_mis_node() {
        let (g, ids) = generators::star(5);
        let mut net = net_on(g, &ids, 0); // center first → MIS = {center}
        assert_eq!(net.mis(), [ids[0]].into_iter().collect());
        let outcome = net
            .apply_change(&DistributedChange::GracefulDeleteNode(ids[0]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(outcome.adjustments(), 4, "all leaves join");
        assert!(!net.graph().has_node(ids[0]));
    }

    #[test]
    fn graceful_deletion_of_non_mis_node_is_free() {
        let (g, ids) = generators::star(5);
        let mut net = net_on(g, &ids, 0);
        let outcome = net
            .apply_change(&DistributedChange::GracefulDeleteNode(ids[3]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(outcome.adjustments(), 0);
        assert_eq!(outcome.metrics.broadcasts, 0);
        assert_eq!(outcome.metrics.rounds, 0);
    }

    #[test]
    fn abrupt_deletion_multi_source_recovery() {
        let (g, ids) = generators::star(6);
        let mut net = net_on(g, &ids, 0); // center first → MIS = {center}
        let outcome = net
            .apply_change(&DistributedChange::AbruptDeleteNode(ids[0]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(outcome.adjustments(), 5, "every leaf joins");
        assert_eq!(net.mis().len(), 5);
    }

    #[test]
    fn abrupt_deletion_cascade_through_path() {
        // Path with increasing priorities: MIS = {p0, p2, p4}. Abruptly
        // delete p0: p1 joins, p2 leaves, p3 joins, p4 leaves, p5 joins.
        let (g, ids) = generators::path(6);
        let mut net = net_on(g, &ids, 0);
        let outcome = net
            .apply_change(&DistributedChange::AbruptDeleteNode(ids[0]))
            .unwrap();
        net.assert_greedy_invariant();
        assert_eq!(outcome.adjustments(), 5);
        assert_eq!(net.mis(), [ids[1], ids[3], ids[5]].into_iter().collect());
    }

    #[test]
    fn u2_gadget_nodes_change_output_at_most_once_each() {
        // Lemma 8: in Algorithm 2 (single-source changes) each node commits
        // at most once — unlike the direct template where u₂ flips twice.
        let (g, pm, [_, _, _, _, _, anchor]) = dmis_core::template::u2_gadget();
        let order = pm.nodes_by_priority();
        let mut net = net_on(g, &order, 0);
        let v_star = order[1];
        let outcome = net
            .apply_change(&DistributedChange::InsertEdge(anchor, v_star))
            .unwrap();
        net.assert_greedy_invariant();
        // 5 influenced nodes → ≤ 5 commits; each node adjusts at most once,
        // and u₂'s final output equals its original (not adjusted).
        assert!(outcome.adjustments() <= 4);
        // Broadcast budget: 2 Info + per-influenced-node (ToC + ToR +
        // Commit) = 2 + 3·5.
        assert!(outcome.metrics.broadcasts <= 2 + 3 * 5);
    }

    #[test]
    fn random_churn_maintains_invariant() {
        let mut rng = StdRng::seed_from_u64(77);
        let (g, _) = generators::erdos_renyi(16, 0.25, &mut rng);
        let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, 5);
        for step in 0..120 {
            let Some(change) =
                stream::random_change(&net.logical_graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let change = stream::randomize_distributed(&change, &mut rng);
            net.apply_change(&change).unwrap();
            net.assert_greedy_invariant();
            let _ = step;
        }
    }

    #[test]
    fn outputs_match_sequential_engine_under_same_priorities() {
        // History independence, distributed edition: the network's stable
        // output equals the greedy MIS for its (graph, π) — already asserted
        // by assert_greedy_invariant — and therefore equals the sequential
        // engine's output when priorities agree.
        let mut rng = StdRng::seed_from_u64(3);
        let (g, ids) = generators::erdos_renyi(12, 0.3, &mut rng);
        let mut order = ids.clone();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        let pm = PriorityMap::from_order(&order);
        let mut net =
            SyncNetwork::bootstrap_with_priorities(ConstantBroadcast, g.clone(), pm.clone(), 1);
        let engine = dmis_core::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(9)
            .build_unsharded();
        // Same starting point.
        assert_eq!(net.mis(), engine.mis());
        // Drive one edge change through both.
        if let Some((u, v)) = generators::random_edge(net.graph(), &mut rng) {
            let mut engine = engine;
            net.apply_change(&DistributedChange::AbruptDeleteEdge(u, v))
                .unwrap();
            engine.remove_edge(u, v).unwrap();
            assert_eq!(net.mis(), engine.mis());
        }
    }

    #[test]
    fn broadcast_count_scales_with_log_for_abrupt_deletions() {
        // Smoke check of the O(min{log n, d}) claim: the mean broadcast
        // count for abrupt deletions on moderate graphs stays small.
        let mut rng = StdRng::seed_from_u64(13);
        let mut total_broadcasts = 0usize;
        let mut trials = 0usize;
        for seed in 0..30u64 {
            let (g, ids) = generators::erdos_renyi(24, 0.15, &mut rng);
            let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, seed);
            let victim = ids[rng.random_range(0..ids.len())];
            let outcome = net
                .apply_change(&DistributedChange::AbruptDeleteNode(victim))
                .unwrap();
            net.assert_greedy_invariant();
            total_broadcasts += outcome.metrics.broadcasts;
            trials += 1;
        }
        let mean = total_broadcasts as f64 / trials as f64;
        assert!(
            mean < 12.0,
            "mean broadcasts {mean} too high for abrupt deletion"
        );
    }
}
