use std::collections::BTreeSet;

use dmis_core::{DynamicMis, MisEngine, Priority, PriorityMap, UpdateReceipt};
use dmis_graph::{DynGraph, GraphError, NodeId, TopologyChange};

/// The "natural" **deterministic** dynamic greedy algorithm: maintain the
/// greedy MIS for the fixed order given by node identifiers (no
/// randomness).
///
/// This is the foil of the Section 1.1 lower bound: for any deterministic
/// dynamic MIS algorithm there is a topology change forcing `n`
/// adjustments. Concretely, on the complete bipartite cascade
/// ([`dmis_graph::stream::bipartite_cascade`]) this algorithm keeps the
/// shrinking side in the MIS until its last member disappears, and then
/// flips the output of every remaining node at once (experiment E4).
///
/// It is also the natural *history-dependent* algorithm of Section 5's
/// examples: built leaf-by-leaf, a star always ends with only its center in
/// the MIS (expected size 1 instead of Θ(n)).
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, TopologyChange};
/// use dmis_protocol::DeterministicGreedy;
///
/// let (g, ids) = generators::star(5);
/// let mut det = DeterministicGreedy::new(g);
/// // Identifier order puts the center first: MIS = {center}.
/// assert_eq!(det.mis().len(), 1);
/// det.apply(&TopologyChange::DeleteNode(ids[0]))?;
/// assert_eq!(det.mis().len(), 4, "all leaves flip in at once");
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicGreedy {
    engine: MisEngine,
}

impl DeterministicGreedy {
    /// Creates the baseline over `graph`, ordering nodes by identifier.
    #[must_use]
    pub fn new(graph: DynGraph) -> Self {
        let mut priorities = PriorityMap::new();
        for v in graph.nodes() {
            priorities.insert(v, identity_priority(v));
        }
        DeterministicGreedy {
            engine: dmis_core::Engine::builder()
                .graph(graph)
                .priorities(priorities)
                .seed(0)
                .build_unsharded(),
        }
    }

    /// The current graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        self.engine.graph()
    }

    /// The current MIS.
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.engine.mis()
    }

    /// Applies a change, maintaining the identifier-order greedy MIS.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the change is invalid.
    pub fn apply(&mut self, change: &TopologyChange) -> Result<UpdateReceipt, GraphError> {
        match change {
            TopologyChange::InsertNode { id, edges } => {
                if self.engine.graph().peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                self.engine
                    .insert_node_with_key(edges.iter().copied(), 0)
                    .map(|(_, r)| r)
            }
            other => self.engine.apply(other),
        }
    }
}

// All keys are zero: the (key, id) order degenerates to identifier order.
fn identity_priority(v: NodeId) -> Priority {
    Priority::new(0, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use dmis_graph::stream;

    #[test]
    fn identifier_order_is_respected() {
        let (g, ids) = generators::path(4);
        let det = DeterministicGreedy::new(g);
        assert_eq!(det.mis(), [ids[0], ids[2]].into_iter().collect());
    }

    #[test]
    fn bipartite_cascade_forces_full_flip() {
        let k = 6;
        let (g, left, right, changes) = stream::bipartite_cascade(k);
        let mut det = DeterministicGreedy::new(g);
        // Identifier order: left side first → left is the MIS.
        assert_eq!(det.mis(), left.iter().copied().collect());
        let mut max_adjust = 0usize;
        for change in &changes {
            let receipt = det.apply(change).unwrap();
            max_adjust = max_adjust.max(receipt.adjustments());
        }
        // The final deletion flips the entire right side at once.
        assert_eq!(max_adjust, k, "worst step adjusts all k survivors");
        assert_eq!(det.mis(), right.iter().copied().collect());
    }

    #[test]
    fn star_built_adversarially_keeps_center() {
        let mut det = DeterministicGreedy::new(DynGraph::new());
        for change in stream::adversarial_star_stream(12) {
            det.apply(&change).unwrap();
        }
        assert_eq!(det.mis().len(), 1, "worst-case MIS: the center alone");
        assert!(det.mis().contains(&NodeId(0)));
    }

    #[test]
    fn stale_insert_id_is_rejected() {
        let (g, _) = generators::path(2);
        let mut det = DeterministicGreedy::new(g);
        let err = det
            .apply(&TopologyChange::InsertNode {
                id: NodeId(0),
                edges: vec![],
            })
            .unwrap_err();
        assert_eq!(err, GraphError::MissingNode(NodeId(0)));
    }
}
