//! Luby's classic randomized MIS algorithm [Luby 1986, Alon-Babai-Itai
//! 1986] — the **static recompute baseline**.
//!
//! The standard way to handle dynamic topology before this paper was to
//! rerun a static MIS algorithm after every change. Luby's algorithm
//! finishes in `O(log n)` rounds with high probability, so the baseline
//! pays `Θ(log n)` rounds and `Θ(n)` broadcasts *per change*, and its
//! output is freshly randomized each time (so a single change can adjust
//! `Θ(n)` outputs). Experiment E10 contrasts this with the paper's
//! constant-cost recovery.
//!
//! Synchronous schedule per phase (2 rounds):
//! 1. every active node broadcasts a fresh random value (`O(log n)` bits);
//! 2. local minima join the MIS and broadcast victory (1 bit); winners and
//!    their neighbors deactivate.

use std::collections::{BTreeMap, BTreeSet};

use dmis_graph::{DynGraph, GraphError, NodeId, TopologyChange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cost and result of one from-scratch Luby run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LubyOutcome {
    /// The computed maximal independent set.
    pub mis: BTreeSet<NodeId>,
    /// Synchronous rounds used (2 per phase).
    pub rounds: usize,
    /// Broadcast messages sent.
    pub broadcasts: usize,
    /// Total payload bits.
    pub bits: usize,
}

/// Runs Luby's algorithm once on `g`.
///
/// # Example
///
/// ```
/// use dmis_graph::generators;
/// use dmis_protocol::luby;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let (g, _) = generators::cycle(10);
/// let outcome = luby::run(&g, &mut StdRng::seed_from_u64(1));
/// assert!(dmis_core::invariant::is_maximal_independent_set(&g, &outcome.mis));
/// ```
#[must_use]
pub fn run<R: Rng + ?Sized>(g: &DynGraph, rng: &mut R) -> LubyOutcome {
    let mut active: BTreeSet<NodeId> = g.nodes().collect();
    let mut mis = BTreeSet::new();
    let mut rounds = 0usize;
    let mut broadcasts = 0usize;
    let mut bits = 0usize;
    while !active.is_empty() {
        // Round 1: active nodes broadcast random values.
        let values: BTreeMap<NodeId, (u64, NodeId)> = active
            .iter()
            .map(|&v| (v, (rng.random::<u64>(), v)))
            .collect();
        broadcasts += active.len();
        bits += active.len() * 64;
        // Round 2: local minima announce victory.
        let winners: BTreeSet<NodeId> = active
            .iter()
            .copied()
            .filter(|&v| {
                g.neighbors(v)
                    .expect("active nodes are live")
                    .filter(|u| active.contains(u))
                    .all(|u| values[&v] < values[&u])
            })
            .collect();
        broadcasts += winners.len();
        bits += winners.len();
        rounds += 2;
        for &w in &winners {
            mis.insert(w);
            active.remove(&w);
            for u in g.neighbors(w).expect("winners are live") {
                active.remove(&u);
            }
        }
    }
    LubyOutcome {
        mis,
        rounds,
        broadcasts,
        bits,
    }
}

/// Metrics of one baseline recovery (a full Luby rerun).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LubyChangeOutcome {
    /// Rounds spent recomputing.
    pub rounds: usize,
    /// Broadcasts spent recomputing.
    pub broadcasts: usize,
    /// Payload bits spent recomputing.
    pub bits: usize,
    /// Nodes whose output differs from before the change.
    pub adjusted: BTreeSet<NodeId>,
}

impl LubyChangeOutcome {
    /// The adjustment complexity of this change.
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.adjusted.len()
    }
}

/// The static-recompute dynamic MIS baseline: rerun Luby after every
/// topology change.
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, TopologyChange};
/// use dmis_protocol::luby::DynamicLuby;
///
/// let (g, ids) = generators::cycle(8);
/// let mut baseline = DynamicLuby::new(g, 7);
/// let outcome = baseline.apply(&TopologyChange::DeleteEdge(ids[0], ids[1]))?;
/// assert!(outcome.rounds >= 2);
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicLuby {
    graph: DynGraph,
    mis: BTreeSet<NodeId>,
    rng: StdRng,
}

impl DynamicLuby {
    /// Creates the baseline over `graph`, computing the initial MIS.
    #[must_use]
    pub fn new(graph: DynGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = run(&graph, &mut rng);
        DynamicLuby {
            graph,
            mis: outcome.mis,
            rng,
        }
    }

    /// The current graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current MIS.
    #[must_use]
    pub fn mis(&self) -> &BTreeSet<NodeId> {
        &self.mis
    }

    /// Applies a change and recomputes from scratch.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the change is invalid.
    pub fn apply(&mut self, change: &TopologyChange) -> Result<LubyChangeOutcome, GraphError> {
        let before = self.mis.clone();
        change.apply(&mut self.graph)?;
        let outcome = run(&self.graph, &mut self.rng);
        self.mis = outcome.mis;
        let adjusted: BTreeSet<NodeId> = before
            .symmetric_difference(&self.mis)
            .copied()
            .filter(|v| self.graph.has_node(*v))
            .collect();
        Ok(LubyChangeOutcome {
            rounds: outcome.rounds,
            broadcasts: outcome.broadcasts,
            bits: outcome.bits,
            adjusted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_core::invariant;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};

    #[test]
    fn luby_produces_mis_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 10, 50] {
            let (g, _) = generators::erdos_renyi(n, 0.2, &mut rng);
            let outcome = run(&g, &mut rng);
            assert!(invariant::is_maximal_independent_set(&g, &outcome.mis));
        }
    }

    #[test]
    fn luby_on_empty_graph() {
        let g = DynGraph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = run(&g, &mut rng);
        assert!(outcome.mis.is_empty());
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.broadcasts, 0);
    }

    #[test]
    fn luby_isolated_nodes_join_immediately() {
        let (g, _) = DynGraph::with_nodes(5);
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = run(&g, &mut rng);
        assert_eq!(outcome.mis.len(), 5);
        assert_eq!(outcome.rounds, 2, "one phase suffices");
    }

    #[test]
    fn luby_rounds_grow_slowly() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::erdos_renyi(200, 0.05, &mut rng);
        let outcome = run(&g, &mut rng);
        assert!(
            outcome.rounds <= 2 * 20,
            "O(log n) phases expected, got {} rounds",
            outcome.rounds
        );
        assert!(outcome.broadcasts >= 200, "everyone speaks at least once");
    }

    #[test]
    fn dynamic_luby_stays_correct_under_churn() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, _) = generators::erdos_renyi(15, 0.25, &mut rng);
        let mut baseline = DynamicLuby::new(g, 3);
        for _ in 0..60 {
            let Some(change) =
                stream::random_change(baseline.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            baseline.apply(&change).unwrap();
            assert!(invariant::is_maximal_independent_set(
                baseline.graph(),
                baseline.mis()
            ));
        }
    }

    #[test]
    fn dynamic_luby_adjustments_can_be_large() {
        // Fresh randomness per run means even a no-impact change can reshuffle
        // the whole output — the paper's motivation for *not* recomputing.
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = generators::erdos_renyi(60, 0.1, &mut rng);
        let mut baseline = DynamicLuby::new(g, 8);
        let mut max_adjust = 0usize;
        for _ in 0..20 {
            let Some(change) =
                stream::random_change(baseline.graph(), &ChurnConfig::edges_only(), &mut rng)
            else {
                continue;
            };
            let outcome = baseline.apply(&change).unwrap();
            max_adjust = max_adjust.max(outcome.adjustments());
        }
        assert!(
            max_adjust > 3,
            "recompute baseline should reshuffle many outputs, saw ≤ {max_adjust}"
        );
    }
}
