use std::collections::BTreeMap;

use dmis_core::MisState;
use dmis_graph::NodeId;

/// A neighbor's protocol state as last heard over the broadcast channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Committed `M` or `M̄`.
    Committed(MisState),
    /// In the transient `C` (changing) state of Algorithm 2.
    Changing,
    /// In the transient `R` (ready) state of Algorithm 2.
    Ready,
}

impl PeerState {
    /// Returns `true` if the peer is committed to `M`.
    #[must_use]
    pub fn is_in_mis(self) -> bool {
        matches!(self, PeerState::Committed(MisState::In))
    }

    /// Returns `true` if the peer is in a committed (`M`/`M̄`) state.
    #[must_use]
    pub fn is_committed(self) -> bool {
        matches!(self, PeerState::Committed(_))
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    ell: Option<u64>,
    state: PeerState,
}

/// What a node knows about its neighborhood: each neighbor's random key ℓ
/// (once learned) and last-announced state.
///
/// The paper maintains "the property that each node has knowledge of its ℓ
/// value and those of its neighbors" (Section 4); this struct is that
/// knowledge plus the state tracking Algorithm 2's rules read. All
/// order-sensitive queries (`Iπ(v)`-style "lower" sets) compare `(ℓ, id)`
/// pairs, matching [`dmis_core::Priority`] exactly.
#[derive(Debug, Clone)]
pub struct Knowledge {
    me: (u64, NodeId),
    entries: BTreeMap<NodeId, Entry>,
}

impl Knowledge {
    /// Creates knowledge for node `id` with random key `ell` and no known
    /// neighbors.
    #[must_use]
    pub fn new(id: NodeId, ell: u64) -> Self {
        Knowledge {
            me: (ell, id),
            entries: BTreeMap::new(),
        }
    }

    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.me.1
    }

    /// This node's random key ℓ.
    #[must_use]
    pub fn ell(&self) -> u64 {
        self.me.0
    }

    /// Registers a neighbor whose ℓ is not yet known (assumed committed `M̄`
    /// until it announces otherwise — newcomers always start as `M̄`).
    pub fn add_unknown(&mut self, peer: NodeId) {
        self.entries.entry(peer).or_insert(Entry {
            ell: None,
            state: PeerState::Committed(MisState::Out),
        });
    }

    /// Registers a fully known neighbor.
    pub fn add_known(&mut self, peer: NodeId, ell: u64, state: PeerState) {
        self.entries.insert(
            peer,
            Entry {
                ell: Some(ell),
                state,
            },
        );
    }

    /// Records a neighbor's announced ℓ and committed state (join
    /// handshakes).
    pub fn learn_info(&mut self, peer: NodeId, ell: u64, state: MisState) {
        self.entries.insert(
            peer,
            Entry {
                ell: Some(ell),
                state: PeerState::Committed(state),
            },
        );
    }

    /// Records a neighbor's announced state change. Ignores unknown peers
    /// (messages from non-logical neighbors, e.g. a gracefully removed edge
    /// still relaying).
    pub fn learn_state(&mut self, peer: NodeId, state: PeerState) {
        if let Some(e) = self.entries.get_mut(&peer) {
            e.state = state;
        }
    }

    /// Forgets a neighbor, returning its last known state if any.
    pub fn remove(&mut self, peer: NodeId) -> Option<PeerState> {
        self.entries.remove(&peer).map(|e| e.state)
    }

    /// Returns `true` if `peer` is a known neighbor.
    #[must_use]
    pub fn contains(&self, peer: NodeId) -> bool {
        self.entries.contains_key(&peer)
    }

    /// Returns the last known state of `peer`.
    #[must_use]
    pub fn state_of(&self, peer: NodeId) -> Option<PeerState> {
        self.entries.get(&peer).map(|e| e.state)
    }

    /// Returns `true` once every neighbor's ℓ is known (joins completed).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.entries.values().all(|e| e.ell.is_some())
    }

    /// Returns `true` if `peer`'s ℓ is known and `(ℓ_peer, peer)` orders
    /// before `(ℓ_me, me)` — i.e. `peer ∈ Iπ(me)`.
    #[must_use]
    pub fn is_lower(&self, peer: NodeId) -> bool {
        self.entries
            .get(&peer)
            .and_then(|e| e.ell)
            .is_some_and(|ell| (ell, peer) < self.me)
    }

    /// Returns `true` if some lower-order neighbor is committed to `M`.
    #[must_use]
    pub fn lower_mis_neighbor_exists(&self) -> bool {
        self.lower().any(|(_, e)| e.state.is_in_mis())
    }

    /// Returns `true` if no lower-order neighbor is committed to `M`
    /// (counting `C`/`R` neighbors as "not in M", per Algorithm 2's rule for
    /// `M̄` nodes).
    #[must_use]
    pub fn no_lower_in_mis(&self) -> bool {
        !self.lower_mis_neighbor_exists()
    }

    /// Returns `true` if every lower-order neighbor is committed (`M`/`M̄`)
    /// — the guard of Algorithm 2's `R → M/M̄` transition.
    #[must_use]
    pub fn all_lower_committed(&self) -> bool {
        self.lower().all(|(_, e)| e.state.is_committed())
    }

    /// Returns `true` if some higher-order neighbor is in state `C` — the
    /// blocker of Algorithm 2's `C → R` transition.
    #[must_use]
    pub fn higher_changing_exists(&self) -> bool {
        self.entries.iter().any(|(&peer, e)| {
            e.state == PeerState::Changing && e.ell.is_some_and(|ell| (ell, peer) > self.me)
        })
    }

    /// Iterates over `(peer, ℓ)` for all known-ℓ neighbors.
    pub fn neighbor_ells(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries
            .iter()
            .filter_map(|(&peer, e)| e.ell.map(|ell| (peer, ell)))
    }

    /// Number of registered neighbors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no neighbors are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lower(&self) -> impl Iterator<Item = (NodeId, &Entry)> + '_ {
        self.entries.iter().filter_map(|(&peer, e)| {
            let ell = e.ell?;
            ((ell, peer) < self.me).then_some((peer, e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> Knowledge {
        // me = (ℓ=50, n10)
        Knowledge::new(NodeId(10), 50)
    }

    #[test]
    fn ordering_queries() {
        let mut kn = k();
        kn.add_known(NodeId(1), 10, PeerState::Committed(MisState::In));
        kn.add_known(NodeId(2), 90, PeerState::Committed(MisState::Out));
        assert!(kn.is_lower(NodeId(1)));
        assert!(!kn.is_lower(NodeId(2)));
        assert!(kn.lower_mis_neighbor_exists());
        assert!(!kn.no_lower_in_mis());
        assert!(kn.all_lower_committed());
        assert!(!kn.higher_changing_exists());
    }

    #[test]
    fn tie_breaks_by_id() {
        let mut kn = k();
        kn.add_known(NodeId(3), 50, PeerState::Committed(MisState::In));
        assert!(kn.is_lower(NodeId(3)), "equal ℓ, smaller id → lower");
        kn.add_known(NodeId(11), 50, PeerState::Committed(MisState::In));
        assert!(!kn.is_lower(NodeId(11)), "equal ℓ, larger id → higher");
    }

    #[test]
    fn unknown_entries_are_neither_lower_nor_higher() {
        let mut kn = k();
        kn.add_unknown(NodeId(4));
        assert!(!kn.is_lower(NodeId(4)));
        assert!(!kn.complete());
        assert!(kn.no_lower_in_mis());
        kn.learn_info(NodeId(4), 5, MisState::In);
        assert!(kn.complete());
        assert!(kn.lower_mis_neighbor_exists());
    }

    #[test]
    fn state_updates_and_guards() {
        let mut kn = k();
        kn.add_known(NodeId(1), 10, PeerState::Committed(MisState::In));
        kn.add_known(NodeId(20), 80, PeerState::Committed(MisState::Out));
        kn.learn_state(NodeId(1), PeerState::Changing);
        assert!(!kn.all_lower_committed());
        assert!(kn.no_lower_in_mis(), "a C neighbor is not in M");
        kn.learn_state(NodeId(20), PeerState::Changing);
        assert!(kn.higher_changing_exists());
        kn.learn_state(NodeId(20), PeerState::Ready);
        assert!(!kn.higher_changing_exists());
        // Messages from strangers are ignored.
        kn.learn_state(NodeId(77), PeerState::Changing);
        assert!(kn.state_of(NodeId(77)).is_none());
    }

    #[test]
    fn removal_returns_last_state() {
        let mut kn = k();
        kn.add_known(NodeId(1), 10, PeerState::Committed(MisState::In));
        assert_eq!(
            kn.remove(NodeId(1)),
            Some(PeerState::Committed(MisState::In))
        );
        assert_eq!(kn.remove(NodeId(1)), None);
        assert!(kn.is_empty());
    }

    #[test]
    fn add_unknown_does_not_clobber() {
        let mut kn = k();
        kn.learn_info(NodeId(2), 7, MisState::In);
        kn.add_unknown(NodeId(2));
        assert!(kn.is_lower(NodeId(2)), "existing knowledge kept");
        assert_eq!(kn.len(), 1);
    }
}
