//! # dmis-protocol
//!
//! Distributed node protocols for *Optimal Dynamic Distributed MIS*, built
//! on the `dmis-sim` broadcast simulator:
//!
//! - [`ConstantBroadcast`] — the paper's **Algorithm 2** and its Section 4.1
//!   / 4.2 refinements: four states `M`, `M̄`, `C` (changing), `R` (ready),
//!   a two-round guard in `C`, join handshakes, and multi-source recovery
//!   after abrupt node deletions. Expected complexity per change
//!   (Theorem 7): 1 adjustment, `O(1)` rounds, `O(1)` broadcasts —
//!   `O(min{log n, d(v*)})` for abrupt node deletion, `O(d(v*))` for node
//!   insertion.
//! - [`TemplateDirect`] — the direct distributed implementation of the
//!   template (Corollary 6): one adjustment and one round in expectation,
//!   in both the synchronous ([`dmis_sim::SyncNetwork`]) and asynchronous
//!   ([`dmis_sim::AsyncNetwork`]) models; its broadcast count is *not*
//!   constant, which is exactly what motivates Algorithm 2 (experiment
//!   E11).
//! - [`luby`] — Luby's classic static MIS algorithm, used as the
//!   recompute-from-scratch baseline (`O(log n)` rounds w.h.p. per change).
//! - [`DeterministicGreedy`] — the "natural" greedy-by-identifier dynamic
//!   algorithm; the Section 1.1 lower bound forces it into `n` adjustments
//!   on the complete-bipartite cascade (experiment E4).

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod const_broadcast;
mod det_greedy;
mod knowledge;
mod template_direct;

pub mod luby;

pub use const_broadcast::{CbMsg, CbNode, ConstantBroadcast};
pub use det_greedy::DeterministicGreedy;
pub use knowledge::{Knowledge, PeerState};
pub use template_direct::{TdMsg, TdNode, TemplateDirect};
